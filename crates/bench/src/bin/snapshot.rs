//! Emits a `BENCH_*.json` perf snapshot: the three numbers the roadmap
//! tracks across PRs, in a machine-diffable shape.
//!
//! ```console
//! $ cargo run --release -p bench --bin snapshot            # BENCH_baseline.json
//! $ cargo run --release -p bench --bin snapshot -- pr12    # BENCH_pr12.json
//! ```
//!
//! The measurements mirror the CI-run workloads:
//!
//! - `quickstart_build_ms` — the `examples/quickstart.rs` setup: SE(ε=0.1)
//!   over the exact engine on the SfSmall preset with 60 POIs;
//! - `query_batch_ns_per_op` — `benches/query_batch.rs`'s 10k-pair batch
//!   through `QueryHandle::distance_many`, per-pair;
//! - `path_query_us_per_op` — `benches/path_query.rs`'s 64-pair
//!   `shortest_path` sweep, per-query;
//! - `socket_pairs_per_s` / `socket_p99_us` — the `oracled` server core on
//!   a loopback socket, saturated by 4 concurrent clients (the CI serving
//!   smoke, measured). Pair throughput is scraped from the server's own
//!   telemetry registry over the wire `Metrics` verb; the p99 is the
//!   exact nearest-rank quantile over the raw per-request samples (the
//!   run is ≤64k requests, so there is no reason to pay a log-bucket
//!   histogram's ≤25 % bucket error on a headline number);
//! - `seat_bytes_v1` / `seat_bytes_v2` / `seat_compact_ratio` — the same
//!   workload tiled into a 2×2 atlas, serialized as a v1 `SEAT` image and
//!   as the compact v2 (`--compress`) image;
//! - `ooc_pairs_per_s` — the compact image served out-of-core under a
//!   resident budget of half its decoded size (eviction active), 10k
//!   pairs through the parallel atlas driver.
//!
//! Each timing is the median of several repetitions, so a snapshot is
//! stable enough to eyeball across commits without a criterion run.

use bench::setup::{query_pairs, Workload};
use se_oracle::atlas::{Atlas, AtlasConfig, AtlasHandle};
use se_oracle::net::{Backend, Connection, OracleServer, Request, Response, ServeConfig};
use se_oracle::oracle::BuildConfig;
use se_oracle::p2p::{EngineKind, P2POracle};
use se_oracle::route::PathIndex;
use se_oracle::serve::{pair_stream, QueryHandle};
use std::hint::black_box;
use std::time::Instant;
use terrain::gen::Preset;
use terrain::tile::TileGridConfig;

const BATCH: usize = 10_000;
const PATH_PAIRS: usize = 64;
const SOCK_CLIENTS: u64 = 4;
const SOCK_REQUESTS: u64 = 250;
const SOCK_PAIRS: usize = 64;

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "baseline".to_string());

    // 1. Quickstart build: exact engine, as in examples/quickstart.rs.
    let mesh = Preset::SfSmall.mesh(1.0);
    let pois = terrain::poi::sample_uniform(&mesh, 60, 42);
    let build_ms = median_ms(3, || {
        let oracle =
            P2POracle::build(&mesh, &pois, 0.1, EngineKind::Exact, &BuildConfig::default())
                .expect("oracle construction");
        black_box(oracle.oracle().n_pairs());
    });

    // 2. Query batch: 10k pairs through the amortized layer-array driver.
    let w = Workload::preset(Preset::SfSmall, 0.3, 60);
    let built =
        P2POracle::build(&w.mesh, &w.pois, 0.15, EngineKind::EdgeGraph, &BuildConfig::default())
            .expect("oracle construction");
    let paths = PathIndex::for_p2p(&built, 3);
    let handle = QueryHandle::new(built.into_oracle()).with_paths(paths);
    let pairs: Vec<(u32, u32)> = query_pairs(handle.n_sites(), BATCH, 0xBA7C)
        .into_iter()
        .map(|(s, t)| (s as u32, t as u32))
        .collect();
    let batch_ms = median_ms(9, || {
        black_box(handle.distance_many(&pairs));
    });
    let query_ns = batch_ms * 1e6 / BATCH as f64;

    // 3. Path queries: the 64-pair shortest_path sweep.
    let route_pairs = query_pairs(handle.n_sites(), PATH_PAIRS, 0x9A7B);
    let path_ms = median_ms(9, || {
        let mut acc = 0.0;
        for &(s, t) in &route_pairs {
            acc += handle.shortest_path(s, t).path.length;
        }
        black_box(acc);
    });
    let path_us = path_ms * 1e3 / PATH_PAIRS as f64;

    // 4. Socket serving: `oracled`'s server core on an ephemeral port,
    //    pushed by pipelining clients until the single batcher core is the
    //    bottleneck — aggregate pair throughput and p99 request latency.
    let server =
        OracleServer::bind("127.0.0.1:0", Backend::Oracle(handle.clone()), ServeConfig::default())
            .expect("bind server");
    let addr = server.local_addr().expect("server addr");
    let server = std::thread::spawn(move || server.serve());
    let n_sites = handle.n_sites();
    let t0 = Instant::now();
    let clients: Vec<_> = (0..SOCK_CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut conn = Connection::connect(addr).expect("connect");
                let mut lat_us = Vec::with_capacity(SOCK_REQUESTS as usize);
                for r in 0..SOCK_REQUESTS {
                    let stream = client * SOCK_REQUESTS + r;
                    let pairs = pair_stream(0xBEAC, stream, SOCK_PAIRS, n_sites);
                    let t = Instant::now();
                    match conn.roundtrip(&Request::Distance { id: stream, pairs }) {
                        Ok(Response::Distances { .. }) => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                    lat_us.push(t.elapsed().as_micros() as u64);
                }
                lat_us
            })
        })
        .collect();
    // Raw samples, not a histogram: 1000 requests fit trivially, and the
    // nearest-rank quantile is exact (a log-bucket histogram's p99 carries
    // up to ~25 % bucket error — enough to swamp a real regression).
    let mut lat_us: Vec<u64> = Vec::with_capacity((SOCK_CLIENTS * SOCK_REQUESTS) as usize);
    for c in clients {
        lat_us.extend(c.join().expect("client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    // Throughput comes from the server's own telemetry registry (the wire
    // `Metrics` verb), not from recounting what this process sent — the
    // snapshot reports what the server actually served.
    let mut ctl = Connection::connect(addr).expect("connect");
    let served_pairs = match ctl.roundtrip(&Request::Metrics { id: 0 }) {
        Ok(Response::Metrics { text, .. }) => {
            obs::lookup(&text, "serve_pairs_total").expect("serve_pairs_total in metrics")
        }
        other => panic!("unexpected response: {other:?}"),
    };
    let _ = ctl.roundtrip(&Request::Shutdown { id: 0 });
    let _ = server.join();
    let socket_qps = served_pairs as f64 / elapsed;
    lat_us.sort_unstable();
    let rank = ((lat_us.len() * 99).div_ceil(100)).saturating_sub(1);
    let socket_p99_us = lat_us[rank] as f64;

    // 5. Compressed image sizes + out-of-core throughput: the same
    //    workload tiled 2×2, saved v1 and compact v2, then the compact
    //    image served under a resident budget of half its decoded size.
    let acfg = AtlasConfig {
        grid: TileGridConfig::default(),
        build: BuildConfig::default(),
        path_points_per_edge: None,
    };
    let atlas = Atlas::build(&w.mesh, &w.pois, 0.15, EngineKind::EdgeGraph, &acfg)
        .expect("atlas construction");
    let v1_bytes = atlas.save_bytes().len();
    let v2_image = atlas.save_bytes_compact(true);
    let seat_ratio = v1_bytes as f64 / v2_image.len() as f64;
    let budget = atlas.storage_bytes() / 2;
    let seat_path =
        std::env::temp_dir().join(format!("bench-snapshot-{}.seat", std::process::id()));
    std::fs::write(&seat_path, &v2_image).expect("write atlas image");
    let ooc = AtlasHandle::new(Atlas::open_out_of_core(&seat_path, budget).expect("open atlas"));
    let ooc_pairs: Vec<(u32, u32)> = query_pairs(ooc.n_sites(), BATCH, 0x0A7A)
        .into_iter()
        .map(|(s, t)| (s as u32, t as u32))
        .collect();
    let ooc_ms = median_ms(5, || {
        black_box(ooc.distance_many_par(&ooc_pairs, 0));
    });
    let ooc_qps = BATCH as f64 / (ooc_ms / 1e3);
    let _ = std::fs::remove_file(&seat_path);

    let json = format!(
        "{{\n  \"schema\": 1,\n  \"label\": \"{label}\",\n  \"generator\": \
         \"cargo run --release -p bench --bin snapshot\",\n  \"measurements\": [\n    \
         {{ \"name\": \"quickstart_build_ms\", \"value\": {build_ms:.2}, \"unit\": \"ms\", \
         \"detail\": \"SE(eps=0.1), exact engine, SfSmall x1.0, 60 POIs, median of 3\" }},\n    \
         {{ \"name\": \"query_batch_ns_per_op\", \"value\": {query_ns:.1}, \"unit\": \"ns\", \
         \"detail\": \"10k-pair distance_many batch, median of 9\" }},\n    \
         {{ \"name\": \"path_query_us_per_op\", \"value\": {path_us:.2}, \"unit\": \"us\", \
         \"detail\": \"64-pair shortest_path sweep, median of 9\" }},\n    \
         {{ \"name\": \"socket_pairs_per_s\", \"value\": {socket_qps:.0}, \"unit\": \"pairs/s\", \
         \"detail\": \"oracled server core, 4 clients x 250 requests x 64 pairs, default admission\" }},\n    \
         {{ \"name\": \"socket_p99_us\", \"value\": {socket_p99_us:.1}, \"unit\": \"us\", \
         \"detail\": \"exact nearest-rank p99 request latency over the same socket run (raw samples)\" }},\n    \
         {{ \"name\": \"seat_bytes_v1\", \"value\": {v1_bytes}, \"unit\": \"bytes\", \
         \"detail\": \"2x2 atlas over the query workload, v1 SEAT image\" }},\n    \
         {{ \"name\": \"seat_bytes_v2\", \"value\": {v2_len}, \"unit\": \"bytes\", \
         \"detail\": \"same atlas, compact v2 (--compress) SEAT image\" }},\n    \
         {{ \"name\": \"seat_compact_ratio\", \"value\": {seat_ratio:.2}, \"unit\": \"x\", \
         \"detail\": \"v1 bytes / compressed v2 bytes\" }},\n    \
         {{ \"name\": \"ooc_pairs_per_s\", \"value\": {ooc_qps:.0}, \"unit\": \"pairs/s\", \
         \"detail\": \"10k-pair parallel batch, out-of-core atlas at half-decoded-size resident budget, median of 5\" }}\n  ]\n}}\n",
        v2_len = v2_image.len()
    );
    let out = format!("BENCH_{label}.json");
    std::fs::write(&out, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out}");
}
