//! Figure 9: Effect of n on the SF dataset (P2P distance queries).
//!
//! Panels (a) building time, (b) oracle size, (c) query time for SE,
//! SP-Oracle and K-Algo. The paper sweeps n ∈ {60k..180k} on the 170k-
//! vertex SF tile, synthesising extra POIs from a Normal fit of the
//! existing ones (§5.2.1) — reproduced here (scaled down) with
//! `terrain::poi::scale_pois`.

use bench::methods::{run_kalgo, run_se, run_sp_oracle, SeSetup};
use bench::setup::{query_pairs, Workload};
use bench::table::{megabytes, millis, secs, Table};
use bench::BenchArgs;
use se_oracle::p2p::EngineKind;
use terrain::locate::FaceLocator;
use terrain::poi::scale_pois;

fn main() {
    let args = BenchArgs::parse();
    // Default 0.25×SF ≈ 5k vertices; POI counts keep the paper's 60..180
    // series (in units instead of thousands, preserving n ≤ N).
    let w = Workload::preset(terrain::gen::Preset::SanFrancisco, 0.25 * args.scale, 60);
    let locator = FaceLocator::build(&w.mesh);
    println!("Fig 9 — SF: N = {} vertices; n sweep\n", w.mesh.n_vertices());

    let mut table = Table::new(
        "Fig 9: effect of n on SF (P2P)",
        &["n", "method", "build(s)", "size(MB)", "query(ms)"],
    );
    let n_queries = if args.quick { 25 } else { 100 };
    // Construction engine: Steiner graph (all three methods share the same
    // substrate; SE's ε error is measured against exact in Fig 8).
    let m = 2;

    for &n in &[60usize, 90, 120, 150, 180] {
        let pois = scale_pois(&w.mesh, &locator, &w.pois, n, 0x919 + n as u64);
        let pairs = query_pairs(pois.len(), n_queries, 0xF19);

        let setup = SeSetup {
            engine: EngineKind::Steiner { points_per_edge: m },
            threads: args.threads,
            ..Default::default()
        };
        let se = run_se("SE", &w.mesh, &pois, 0.1, setup, &pairs, None);
        let sp = run_sp_oracle(
            w.mesh.clone(),
            &pois,
            m,
            6 * 1024 * 1024 * 1024,
            args.threads,
            &pairs,
            None,
        );
        let k = run_kalgo(w.mesh.clone(), &pois, m, &pairs, None);

        for r in [Some(se), sp, Some(k)].into_iter().flatten() {
            table.row(vec![
                n.to_string(),
                r.method,
                secs(r.build),
                megabytes(r.size_bytes),
                millis(r.query_avg),
            ]);
        }
    }
    table.print();
    table.save_csv("fig9");
    println!(
        "shape check (paper): SE build/size grow ~linearly with n and stay well \
         below SP-Oracle; SE query is orders of magnitude below K-Algo."
    );
}
