//! Table 1: asymptotic comparison of the methods, with the paper's
//! practical parameters (β, h) measured on our datasets and plugged in.

use bench::setup::Workload;
use bench::table::Table;
use bench::BenchArgs;
use geodesic::dijkstra::EdgeGraphEngine;
use geodesic::sitespace::VertexSiteSpace;
use se_oracle::dimension::{estimate_beta, estimate_theta, BetaOptions, ThetaOptions};
use se_oracle::oracle::BuildConfig;
use se_oracle::p2p::{EngineKind, P2POracle};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::parse();

    let mut table = Table::new(
        "Table 1: complexity comparison (ε-approximate methods)",
        &["method", "oracle building time", "oracle size", "query time"],
    );
    table.row(vec![
        "SP-Oracle [12]".into(),
        "O(N/(sinθ·ε²)·log³(N/ε)·log²(1/ε))".into(),
        "O(N/(sinθ·ε^1.5)·log²(N/ε)·log²(1/ε))".into(),
        "O(1/(sinθ·ε)·log(1/ε) + loglog(N+n))".into(),
    ]);
    table.row(vec![
        "SE(Naive)".into(),
        "O(nhN·log²N / ε^2β)".into(),
        "O(nh/ε^2β)".into(),
        "O(h²)".into(),
    ]);
    table.row(vec![
        "K-Algo [19]".into(),
        "–".into(),
        "–".into(),
        "O(l³maxN/(lmin·ε·√(1−cosθ))³ + …·logN)".into(),
    ]);
    table.row(vec![
        "SE".into(),
        "O(N·log²N/ε^2β + nh·logn + nh/ε^2β)".into(),
        "O(nh/ε^2β)".into(),
        "O(h)".into(),
    ]);
    table.print();

    // Measured practical parameters, as the paper's caption states
    // (β ∈ [1.3, 1.5] and h < 30 in practice).
    let mut params = Table::new(
        "Table 1 (cont.): measured practical parameters",
        &["dataset", "n", "beta", "theta", "h"],
    );
    for preset in [terrain::gen::Preset::SfSmall, terrain::gen::Preset::BearHeadLow] {
        let w = Workload::preset(preset, 0.3 * args.scale, 60);
        let oracle =
            P2POracle::build(&w.mesh, &w.pois, 0.1, EngineKind::EdgeGraph, &BuildConfig::default())
                .expect("oracle");
        // β over the POI sites with the (cheap) edge-graph metric.
        let refined =
            terrain::refine::insert_surface_points(&w.mesh, &w.pois, None).expect("refine");
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        let space =
            VertexSiteSpace::new(Arc::new(EdgeGraphEngine::new(Arc::new(refined.mesh))), sites);
        let beta = estimate_beta(&space, &BetaOptions::default());
        // θ (Lemma 12 growth exponent) on the same metric; the analysis
        // needs θ ≥ β, which the row lets the reader check directly.
        let theta = estimate_theta(space.engine().as_ref(), &ThetaOptions::default());
        params.row(vec![
            w.name.into(),
            w.pois.len().to_string(),
            format!("{:.2}", beta.beta),
            format!("{:.2}", theta.theta),
            oracle.oracle().height().to_string(),
        ]);
    }
    params.print();
    params.save_csv("table1_params");
}
