//! Figure 14: Effect of ε on the EaglePeak dataset (P2P distance queries)
//! — SE vs K-Algo.

use bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    bench::figures::eps_sweep_p2p(terrain::gen::Preset::EaglePeak, 0.15, 100, &args, "fig14");
}
