//! Figure 13: Effect of ε on the BearHead dataset (P2P distance queries)
//! — SE vs K-Algo (SP-Oracle exceeds the memory budget at this scale in
//! the paper and is omitted, as here).

use bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    bench::figures::eps_sweep_p2p(terrain::gen::Preset::BearHead, 0.15, 100, &args, "fig13");
}
