//! Table 3: statistics of the query distances (km) — max / min / avg /
//! std over the P2P query workload of each dataset, with exact geodesic
//! distances.

use bench::setup::{exact_pair_distances, query_pairs, Workload};
use bench::table::Table;
use bench::BenchArgs;
use terrain::gen::Preset;

fn main() {
    let args = BenchArgs::parse();
    let n_queries = if args.quick { 25 } else { 100 };
    let mut table = Table::new(
        "Table 3: statistics of query distances (km)",
        &["dataset", "max", "min", "avg", "std"],
    );
    for (preset, rel, n_pois) in [
        (Preset::BearHead, 0.15, 100),
        (Preset::EaglePeak, 0.15, 100),
        (Preset::SanFrancisco, 0.15, 100),
    ] {
        let w = Workload::preset(preset, rel * args.scale, n_pois);
        let pairs: Vec<(usize, usize)> = query_pairs(w.pois.len(), n_queries, 0x7AB)
            .into_iter()
            .filter(|&(s, t)| s != t)
            .collect();
        let dists = exact_pair_distances(&w.mesh, &w.pois, &pairs);
        let km: Vec<f64> = dists.iter().map(|d| d / 1000.0).collect();
        let max = km.iter().cloned().fold(0.0, f64::max);
        let min = km.iter().cloned().fold(f64::INFINITY, f64::min);
        let avg = km.iter().sum::<f64>() / km.len() as f64;
        let var = km.iter().map(|d| (d - avg) * (d - avg)).sum::<f64>() / km.len() as f64;
        table.row(vec![
            w.name.into(),
            format!("{max:.2}"),
            format!("{min:.2}"),
            format!("{avg:.2}"),
            format!("{:.2}", var.sqrt()),
        ]);
    }
    table.print();
    table.save_csv("table3");
    println!(
        "paper's Table 3 (full-size tiles): BH 16.57/0.82/7.8/3.33; EP \
         14.15/0.33/6.25/3.15; SF 16.92/0.48/7.09/3.6 km. Footprints match, \
         so our scaled tiles produce the same order of distances."
    );
}
