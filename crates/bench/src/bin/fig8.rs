//! Figure 8: Effect of ε on the smaller SF dataset (P2P distance queries).
//!
//! Panels (a) building time, (b) oracle size, (c) query time, (d) error,
//! for SE(Greedy), SE(Random), SE-Naive, SP-Oracle and K-Algo over
//! ε ∈ {0.05, 0.1, 0.15, 0.2, 0.25}. The paper uses the "smaller version
//! of the SF dataset" (1k vertices, 60 POIs) precisely because SE-Naive
//! and SP-Oracle are only feasible there.

use bench::methods::{run_kalgo, run_se, run_sp_oracle, SeSetup};
use bench::setup::{exact_pair_distances, query_pairs, Workload};
use bench::table::{megabytes, millis, secs, Table};
use bench::BenchArgs;
use se_oracle::oracle::ConstructionMethod;
use se_oracle::p2p::EngineKind;
use se_oracle::tree::SelectionStrategy;

fn main() {
    let args = BenchArgs::parse();
    let w = Workload::preset(terrain::gen::Preset::SfSmall, args.scale, 60);
    let n_queries = if args.quick { 25 } else { 100 };
    let pairs = query_pairs(w.pois.len(), n_queries, 0xF18);
    println!(
        "Fig 8 — SF-small: N = {} vertices, n = {} POIs, {} queries\n",
        w.mesh.n_vertices(),
        w.pois.len(),
        pairs.len()
    );
    let exact = exact_pair_distances(&w.mesh, &w.pois, &pairs);

    let mut table = Table::new(
        "Fig 8: effect of ε on SF-small (P2P)",
        &["eps", "method", "build(s)", "size(MB)", "query(ms)", "avg-err", "max-err"],
    );

    for &eps in &[0.05, 0.1, 0.15, 0.2, 0.25] {
        let mut reports = Vec::new();
        for (label, strategy, method) in [
            ("SE(Greedy)", SelectionStrategy::Greedy, ConstructionMethod::Efficient),
            ("SE(Random)", SelectionStrategy::Random, ConstructionMethod::Efficient),
            ("SE-Naive", SelectionStrategy::Random, ConstructionMethod::Naive),
        ] {
            let setup =
                SeSetup { engine: EngineKind::Exact, strategy, method, threads: args.threads };
            reports.push(run_se(label, &w.mesh, &w.pois, eps, setup, &pairs, Some(&exact)));
        }
        let m = geodesic::steiner::points_per_edge_for_epsilon(eps).min(6);
        if let Some(sp) = run_sp_oracle(
            w.mesh.clone(),
            &w.pois,
            m,
            8 * 1024 * 1024 * 1024,
            args.threads,
            &pairs,
            Some(&exact),
        ) {
            reports.push(sp);
        }
        reports.push(run_kalgo(w.mesh.clone(), &w.pois, m, &pairs, Some(&exact)));

        for r in reports {
            table.row(vec![
                format!("{eps}"),
                r.method,
                secs(r.build),
                megabytes(r.size_bytes),
                millis(r.query_avg),
                format!("{:.5}", r.avg_err),
                format!("{:.5}", r.max_err),
            ]);
        }
    }
    table.print();
    table.save_csv("fig8");
}
