//! Figure 10: Effect of N on the BearHead dataset (P2P distance queries).
//!
//! Panels (a) building time, (b) oracle size, (c) query time for SE and
//! K-Algo — the paper omits SP-Oracle here because its index exceeds the
//! 48 GB budget; we keep a (scaled) budget so the same omission falls out
//! of the harness. N is swept by generating the BH preset at increasing
//! resolutions over the same footprint (our stand-in for the paper's
//! enlarge-then-simplify pipeline; `terrain::simplify` provides the
//! centroid enlargement itself), with the POI set fixed.

use bench::methods::{run_kalgo, run_se, run_sp_oracle, SeSetup};
use bench::setup::{query_pairs, Workload};
use bench::table::{megabytes, millis, secs, Table};
use bench::BenchArgs;
use se_oracle::p2p::EngineKind;

fn main() {
    let args = BenchArgs::parse();
    let n_pois = if args.quick { 60 } else { 200 };
    let n_queries = if args.quick { 25 } else { 100 };
    println!("Fig 10 — BH: N sweep with {n_pois} fixed POIs\n");

    let mut table = Table::new(
        "Fig 10: effect of N on BH (P2P)",
        &["N", "method", "build(s)", "size(MB)", "query(ms)"],
    );
    let m = 1;
    // Paper: N ∈ {0.5M..2.5M}; defaults here 5k..50k (×scale).
    for &rel in &[0.125, 0.25, 0.5, 0.75, 1.0] {
        let w = Workload::preset(terrain::gen::Preset::BearHead, rel * args.scale, n_pois);
        let pairs = query_pairs(w.pois.len(), n_queries, 0xF20);
        let n_label = w.mesh.n_vertices().to_string();

        let setup = SeSetup {
            engine: EngineKind::Steiner { points_per_edge: m },
            threads: args.threads,
            ..Default::default()
        };
        let se = run_se("SE", &w.mesh, &w.pois, 0.1, setup, &pairs, None);
        // Scaled memory budget (the paper's 48 GB, shrunk with the data):
        // SP-Oracle should fit only at the smallest N, if at all.
        let budget = 256 * 1024 * 1024;
        let sp = run_sp_oracle(w.mesh.clone(), &w.pois, m, budget, args.threads, &pairs, None);
        let k = run_kalgo(w.mesh.clone(), &w.pois, m, &pairs, None);

        for r in [Some(se), sp, Some(k)].into_iter().flatten() {
            table.row(vec![
                n_label.clone(),
                r.method,
                secs(r.build),
                megabytes(r.size_bytes),
                millis(r.query_avg),
            ]);
        }
    }
    table.print();
    table.save_csv("fig10");
    println!(
        "shape check (paper): SE size is flat in N (it indexes POIs, not \
         vertices); K-Algo query time grows with N; SP-Oracle exceeds the \
         memory budget beyond the smallest N."
    );
}
