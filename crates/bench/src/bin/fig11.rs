//! Figure 11: Effect of n on the SF dataset (V2V distance queries).
//!
//! V2V: "the original POIs are discarded, and we treat all vertices as
//! POIs", so n = N. The paper sweeps sub-regions of a higher-resolution SF
//! tile; we sweep the preset resolution. Series: SE, SP-Oracle, K-Algo.

use bench::methods::{run_kalgo_v2v, run_se_v2v, run_sp_oracle_v2v, SeSetup};
use bench::setup::{query_pairs, Workload};
use bench::table::{megabytes, millis, secs, Table};
use bench::BenchArgs;
use se_oracle::p2p::EngineKind;

fn main() {
    let args = BenchArgs::parse();
    let n_queries = if args.quick { 25 } else { 100 };
    println!("Fig 11 — SF: V2V sweep (n = N)\n");

    let mut table = Table::new(
        "Fig 11: effect of n on SF (V2V)",
        &["n=N", "method", "build(s)", "size(MB)", "query(ms)"],
    );
    let m = 1;
    // Paper: n = N ∈ {60k..180k}; defaults 600..3000 (×scale) — V2V
    // builds one bounded SSAD per tree node over *every vertex*, the
    // heaviest regime per site.
    for &rel in &[0.03, 0.06, 0.1, 0.15] {
        let w = Workload::preset(terrain::gen::Preset::SanFrancisco, rel * args.scale, 5);
        let n = w.mesh.n_vertices();
        let pairs = query_pairs(n, n_queries, 0xF21);

        let setup = SeSetup {
            engine: EngineKind::Steiner { points_per_edge: m },
            threads: args.threads,
            ..Default::default()
        };
        let se = run_se_v2v("SE", w.mesh.clone(), 0.1, setup, &pairs, None);
        let sp = run_sp_oracle_v2v(
            w.mesh.clone(),
            m,
            2 * 1024 * 1024 * 1024,
            args.threads,
            &pairs,
            None,
        );
        let k = run_kalgo_v2v(w.mesh.clone(), m, &pairs, None);

        for r in [Some(se), sp, Some(k)].into_iter().flatten() {
            table.row(vec![
                n.to_string(),
                r.method,
                secs(r.build),
                megabytes(r.size_bytes),
                millis(r.query_avg),
            ]);
        }
    }
    table.print();
    table.save_csv("fig11");
    println!(
        "shape check (paper): SE build/size ≥1 order below SP-Oracle; SE \
         query 2-3 orders below SP-Oracle and 5-6 below K-Algo."
    );
}
