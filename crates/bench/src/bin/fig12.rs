//! Figure 12: A2A queries and P2P queries with n > N, on low-resolution
//! BearHead.
//!
//! Panels (a) building time, (b) oracle size, (c) P2P query time with
//! n > N, (d) A2A query time — all against ε. The oracle under test is the
//! POI-independent Steiner-point SE of Appendix C (which serves both
//! workloads with the same index, hence identical build/size, as the paper
//! notes), compared to SP-Oracle and K-Algo.

use bench::methods::{run_a2a, run_kalgo, run_sp_oracle, MethodReport};
use bench::setup::{a2a_query_coords, query_pairs, Workload};
use bench::table::{megabytes, millis, secs, Table};
use bench::BenchArgs;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let w = Workload::preset(terrain::gen::Preset::BearHeadLow, 0.04 * args.scale, 10);
    let n_queries = if args.quick { 15 } else { 50 };
    println!("Fig 12 — BH-low: N = {} vertices; A2A + P2P(n > N)\n", w.mesh.n_vertices());

    // n > N POI set for panel (c): 2N POIs (paper: 1M POIs on 150k
    // vertices).
    let locator = terrain::locate::FaceLocator::build(&w.mesh);
    let many_pois =
        terrain::poi::sample_clustered(&w.mesh, &locator, 2 * w.mesh.n_vertices(), 8, 0.1, 0xF22);
    let p2p_pairs = query_pairs(many_pois.len(), n_queries, 0xF23);
    let a2a_coords = a2a_query_coords(&w.mesh, n_queries, 0xF24);

    let mut table = Table::new(
        "Fig 12: A2A and P2P (n > N) on BH-low",
        &["eps", "method", "build(s)", "size(MB)", "P2P-query(ms)", "A2A-query(ms)"],
    );

    for &eps in &[0.05, 0.1, 0.15, 0.2, 0.25] {
        let m = geodesic::steiner::points_per_edge_for_epsilon(eps).min(3);
        // SE (Appendix C oracle): build once, measure both query kinds.
        let (mut se_report, oracle) =
            run_a2a(w.mesh.clone(), eps, Some(m), args.threads, &a2a_coords);
        let a2a_ms = millis(se_report.query_avg);
        // P2P with n > N re-uses the same oracle: query arbitrary POIs.
        let t0 = Instant::now();
        for &(a, b) in &p2p_pairs {
            std::hint::black_box(oracle.distance(&many_pois[a], &many_pois[b]));
        }
        se_report.query_avg = t0.elapsed() / p2p_pairs.len() as u32;
        push_row(&mut table, eps, &se_report, millis(se_report.query_avg), a2a_ms);

        // SP-Oracle: same index answers both query kinds.
        if let Some(sp) = run_sp_oracle(
            w.mesh.clone(),
            &many_pois,
            m,
            1024 * 1024 * 1024,
            args.threads,
            &p2p_pairs,
            None,
        ) {
            let sp_oracle = baselines::SpOracle::build(w.mesh.clone(), m, usize::MAX, args.threads)
                .expect("rebuilt within budget");
            let t0 = Instant::now();
            for &(a, b) in &a2a_coords {
                std::hint::black_box(sp_oracle.distance_xy(a, b));
            }
            let a2a = t0.elapsed() / a2a_coords.len() as u32;
            push_row(&mut table, eps, &sp, millis(sp.query_avg), millis(a2a));
        }

        // K-Algo on both workloads.
        let k = run_kalgo(w.mesh.clone(), &many_pois, m, &p2p_pairs, None);
        let kalgo = baselines::KAlgo::new(w.mesh.clone(), m);
        let t0 = Instant::now();
        for &(a, b) in &a2a_coords {
            std::hint::black_box(kalgo.distance_xy(a, b));
        }
        let a2a = t0.elapsed() / a2a_coords.len() as u32;
        push_row(&mut table, eps, &k, millis(k.query_avg), millis(a2a));
    }
    table.print();
    table.save_csv("fig12");
    println!(
        "shape check (paper): build/size identical between the two workloads \
         for each oracle (same POI-independent index); SE queries are orders \
         of magnitude faster than SP-Oracle/K-Algo; A2A is slower than P2P \
         lookup for SE because of the |N(s)|·|N(t)| neighbourhood scan."
    );
}

fn push_row(table: &mut Table, eps: f64, r: &MethodReport, p2p_ms: String, a2a_ms: String) {
    table.row(vec![
        format!("{eps}"),
        r.method.clone(),
        secs(r.build),
        megabytes(r.size_bytes),
        p2p_ms,
        a2a_ms,
    ]);
}
