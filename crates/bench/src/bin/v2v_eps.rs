//! §5.2.2's V2V ε experiment on the smaller SF dataset: SE vs K-Algo with
//! every vertex treated as a POI.

use bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    bench::figures::eps_sweep_v2v(&args, "v2v_eps");
}
