//! Experiment harness regenerating every table and figure of *Distance
//! Oracle on Terrain Surface* (SIGMOD 2017).
//!
//! Each figure/table has a binary in `src/bin/` printing the same
//! rows/series the paper reports (`cargo run --release -p bench --bin
//! fig8`, …); shared workload construction, measurement and table
//! formatting live here. Criterion microbenchmarks of the same pipelines
//! are under `benches/`.
//!
//! All binaries accept:
//!
//! * `--scale <f64>` — multiplies the default mesh sizes (reach for the
//!   paper's full N with patience and RAM);
//! * `--quick` — shrink everything for a smoke run (used by CI and
//!   `cargo bench` wrappers).

pub mod args;
pub mod figures;
pub mod methods;
pub mod setup;
pub mod table;

pub use args::BenchArgs;
