//! K-Algo: Kaul et al.'s on-the-fly approximate geodesic algorithm
//! (§4.2.2, after \[19\]).
//!
//! The best-known non-oracle baseline: no per-pair precomputation — each
//! query runs a (virtual-source) Dijkstra over the Steiner graph `G_ε`
//! between the two query points, so query time scales with `N` instead of
//! `h`. The Steiner graph itself is built once (that one-off cost and the
//! graph's size are what the paper's building-time/size plots show for
//! K-Algo).

use geodesic::heap::MinHeap;
use geodesic::steiner::{GraphStop, NodeId, SteinerGraph};
use std::sync::Arc;
// lint: allow(d2, "timing types for query stats; wall-clock never feeds oracle data")
use std::time::{Duration, Instant};
use terrain::locate::FaceLocator;
use terrain::poi::SurfacePoint;
use terrain::{FaceId, TerrainMesh, VertexId};

/// The on-the-fly baseline.
pub struct KAlgo {
    mesh: Arc<TerrainMesh>,
    graph: Arc<SteinerGraph>,
    locator: FaceLocator,
    setup_time: Duration,
}

impl KAlgo {
    /// Builds the Steiner graph once; queries run on demand.
    pub fn new(mesh: Arc<TerrainMesh>, points_per_edge: usize) -> Self {
        // lint: allow(d2, "query timing recorded in stats only; never feeds computed distances")
        let t0 = Instant::now();
        let graph = Arc::new(SteinerGraph::with_points_per_edge(mesh.clone(), points_per_edge));
        let locator = FaceLocator::build(&mesh);
        Self { mesh, graph, locator, setup_time: t0.elapsed() }
    }

    /// Approximate geodesic distance between arbitrary surface points: a
    /// virtual-source Dijkstra seeded with the Steiner neighbourhood of
    /// `s`, terminated once no queued label can improve the best completed
    /// path into `t`'s neighbourhood.
    pub fn distance(&self, s: &SurfacePoint, t: &SurfacePoint) -> f64 {
        let ns = self.neighborhood(s.face);
        let nt = self.neighborhood(t.face);
        let n = self.graph.n_nodes();

        // Exit costs |q − t| for target nodes.
        let mut exit = vec![f64::INFINITY; n];
        for &q in &nt {
            exit[q as usize] = self.graph.position(q).dist(t.pos);
        }

        let mut best = if s.face == t.face { s.pos.dist(t.pos) } else { f64::INFINITY };
        let mut dist = vec![f64::INFINITY; n];
        let mut heap: MinHeap<NodeId> = MinHeap::with_capacity(ns.len() * 2);
        for &p in &ns {
            let d = s.pos.dist(self.graph.position(p));
            if d < dist[p as usize] {
                dist[p as usize] = d;
                heap.push(d, p);
            }
        }
        while let Some((key, v)) = heap.pop() {
            if key > dist[v as usize] {
                continue;
            }
            if key >= best {
                break; // no queued path can beat the best completed one
            }
            let e = exit[v as usize];
            if e.is_finite() && key + e < best {
                best = key + e;
            }
            for (u, w) in self.graph.neighbors(v) {
                let nd = key + w;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    heap.push(nd, u);
                }
            }
        }
        best
    }

    /// V2V query: vertex-to-vertex Dijkstra on `G_ε`.
    pub fn distance_vertices(&self, a: VertexId, b: VertexId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.graph.dijkstra(a, GraphStop::Targets(&[b])).dist[b as usize]
    }

    /// Query by x–y projection; `None` outside the footprint.
    pub fn distance_xy(&self, a: (f64, f64), b: (f64, f64)) -> Option<f64> {
        let (fa, pa) = self.locator.locate(&self.mesh, a.0, a.1)?;
        let (fb, pb) = self.locator.locate(&self.mesh, b.0, b.1)?;
        Some(
            self.distance(&SurfacePoint { face: fa, pos: pa }, &SurfacePoint { face: fb, pos: pb }),
        )
    }

    fn neighborhood(&self, f: FaceId) -> Vec<NodeId> {
        let mut out = self.graph.face_nodes(f);
        for e in self.mesh.face_edges(f) {
            if let Some(g) = self.mesh.other_face(e, f) {
                out.extend(self.graph.face_nodes(g));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// One-off setup (Steiner graph + locator) time.
    pub fn setup_time(&self) -> Duration {
        self.setup_time
    }

    /// Persistent state size (graph + locator) — what K-Algo keeps between
    /// queries.
    pub fn storage_bytes(&self) -> usize {
        self.graph.storage_bytes() + self.locator.storage_bytes()
    }

    pub fn graph(&self) -> &Arc<SteinerGraph> {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terrain::gen::{diamond_square, Heightfield};
    use terrain::poi::sample_uniform;

    #[test]
    fn flat_grid_close_to_euclidean() {
        let mesh = Arc::new(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh());
        let k = KAlgo::new(mesh, 2);
        let d = k.distance_xy((0.2, 0.5), (3.8, 3.1)).unwrap();
        let exact = ((3.8f64 - 0.2).powi(2) + (3.1f64 - 0.5).powi(2)).sqrt();
        assert!(d >= exact - 1e-9 && d <= exact * 1.2, "{d} vs {exact}");
    }

    #[test]
    fn matches_sp_oracle_answers() {
        // Same graph, same query scheme — the on-the-fly search must return
        // exactly what the precomputed index returns.
        let mesh = Arc::new(diamond_square(3, 0.6, 5).to_mesh());
        let k = KAlgo::new(mesh.clone(), 1);
        let sp = crate::sp_oracle::SpOracle::build(mesh.clone(), 1, usize::MAX, 1).unwrap();
        let pois = sample_uniform(&mesh, 6, 7);
        for i in 0..6 {
            for j in 0..6 {
                let a = k.distance(&pois[i], &pois[j]);
                let b = sp.distance(&pois[i], &pois[j]);
                assert!((a - b).abs() < 1e-4, "({i},{j}): kalgo {a} vs sp {b}");
            }
        }
    }

    #[test]
    fn v2v_matches_graph() {
        let mesh = Arc::new(diamond_square(3, 0.5, 9).to_mesh());
        let k = KAlgo::new(mesh.clone(), 1);
        for (a, b) in [(0u32, 80u32), (7, 33)] {
            assert!((k.distance_vertices(a, b) - k.graph().distance(a, b)).abs() < 1e-12);
        }
        assert_eq!(k.distance_vertices(4, 4), 0.0);
    }

    #[test]
    fn symmetric() {
        let mesh = Arc::new(diamond_square(3, 0.6, 11).to_mesh());
        let k = KAlgo::new(mesh, 2);
        let a = (1.0, 2.0);
        let b = (6.0, 5.5);
        let ab = k.distance_xy(a, b).unwrap();
        let ba = k.distance_xy(b, a).unwrap();
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn same_point_zero() {
        let mesh = Arc::new(Heightfield::flat(4, 4, 1.0, 1.0).to_mesh());
        let k = KAlgo::new(mesh, 1);
        assert!(k.distance_xy((1.5, 1.5), (1.5, 1.5)).unwrap().abs() < 1e-12);
    }
}
