//! Baseline methods from §4.2 of *Distance Oracle on Terrain Surface*:
//!
//! * [`sp_oracle::SpOracle`] — the Steiner-point-based oracle of Djidjev &
//!   Sommer \[12\] as the paper adapts it: Steiner graph `G_ε` plus an
//!   all-pairs distance index, queried through face neighbourhoods. Large
//!   build time and quadratic size — the behaviour SE improves on.
//! * [`kalgo::KAlgo`] — Kaul et al.'s on-the-fly algorithm \[19\]: no
//!   precomputed index; every query runs a Dijkstra over `G_ε`.
//!
//! The third baseline, SE(Naive), is the `ConstructionMethod::Naive` /
//! `distance_naive` configuration of the `se-oracle` crate itself.

#![forbid(unsafe_code)]
pub mod kalgo;
pub mod sp_oracle;

pub use kalgo::KAlgo;
pub use sp_oracle::{SpOracle, SpOracleError};
