//! SP-Oracle: the Steiner-point-based baseline oracle (§4.2.1, after
//! Djidjev & Sommer \[12\]).
//!
//! As the paper describes the adapted baseline: introduce Steiner points on
//! the terrain, build the graph `G_ε`, and **index the exact distances
//! between any two Steiner points on `G_ε`** — here a full all-pairs
//! matrix, computed by one Dijkstra per node. A query for arbitrary points
//! `s, t` takes the minimum of `|s−p| + d(p,q) + |q−t|` over the Steiner
//! neighbourhoods of the two faces; V2V queries read the matrix directly.
//!
//! This is exactly the design whose *oracle size* and *building time* blow
//! up with `N` — the drawback SE is built to avoid (§1.3) — so the memory
//! budget is explicit: construction refuses (like the paper's "exceeds our
//! memory budget" runs) rather than thrashing.
//!
//! Matrix entries are `f32`: the paper stores exact graph distances; the
//! ~1e-7 relative rounding of `f32` is orders of magnitude below every ε
//! evaluated, and it halves the (already quadratic) footprint.

use geodesic::steiner::{GraphStop, NodeId, SteinerGraph};
use std::sync::Arc;
// lint: allow(d2, "timing types for build stats; wall-clock never feeds oracle data")
use std::time::{Duration, Instant};
use terrain::locate::FaceLocator;
use terrain::poi::SurfacePoint;
use terrain::{FaceId, TerrainMesh, VertexId};

/// Construction failures.
#[derive(Debug)]
pub enum SpOracleError {
    /// The all-pairs matrix would exceed the configured memory budget —
    /// the paper's 48 GB analogue.
    ExceedsMemoryBudget { needed: usize, budget: usize },
}

impl std::fmt::Display for SpOracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpOracleError::ExceedsMemoryBudget { needed, budget } => write!(
                f,
                "SP-Oracle needs {needed} bytes for its all-pairs index, budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for SpOracleError {}

/// The Steiner-point baseline oracle.
pub struct SpOracle {
    mesh: Arc<TerrainMesh>,
    graph: Arc<SteinerGraph>,
    locator: FaceLocator,
    /// Row-major `n_nodes × n_nodes` graph-distance matrix.
    matrix: Vec<f32>,
    n_nodes: usize,
    build_time: Duration,
}

impl SpOracle {
    /// Builds the oracle with `m` Steiner points per edge under a byte
    /// budget for the all-pairs index.
    pub fn build(
        mesh: Arc<TerrainMesh>,
        points_per_edge: usize,
        budget_bytes: usize,
        threads: usize,
    ) -> Result<Self, SpOracleError> {
        // lint: allow(d2, "build timing recorded in stats only; never feeds the oracle image")
        let t0 = Instant::now();
        let graph = Arc::new(SteinerGraph::with_points_per_edge(mesh.clone(), points_per_edge));
        let n = graph.n_nodes();
        let needed = n * n * std::mem::size_of::<f32>();
        if needed > budget_bytes {
            return Err(SpOracleError::ExceedsMemoryBudget { needed, budget: budget_bytes });
        }

        // One Dijkstra per row on the shared construction pool (`0` = auto;
        // the atomic work queue balances uneven row costs). Rows are
        // produced in bounded batches so peak memory stays at the budgeted
        // matrix plus a constant number of rows — not a second full copy.
        let mut matrix = vec![f32::INFINITY; n * n];
        let threads = geodesic::pool::resolve_threads(threads);
        if threads == 1 {
            for s in 0..n {
                let r = graph.dijkstra(s as NodeId, GraphStop::Exhaust);
                for (t, &d) in r.dist.iter().enumerate() {
                    matrix[s * n + t] = d as f32;
                }
            }
        } else {
            const BATCH: usize = 64;
            let mut s0 = 0;
            while s0 < n {
                let batch = (n - s0).min(BATCH);
                let rows: Vec<Vec<f32>> = geodesic::pool::run_indexed(threads, batch, |k| {
                    let r = graph.dijkstra((s0 + k) as NodeId, GraphStop::Exhaust);
                    r.dist.iter().map(|&d| d as f32).collect()
                });
                for (k, row) in rows.into_iter().enumerate() {
                    matrix[(s0 + k) * n..(s0 + k + 1) * n].copy_from_slice(&row);
                }
                s0 += batch;
            }
        }

        let locator = FaceLocator::build(&mesh);
        Ok(Self { mesh, graph, locator, matrix, n_nodes: n, build_time: t0.elapsed() })
    }

    /// Indexed distance between two graph nodes (mesh vertices keep their
    /// ids — this answers V2V queries directly).
    #[inline]
    pub fn distance_nodes(&self, a: NodeId, b: NodeId) -> f64 {
        self.matrix[a as usize * self.n_nodes + b as usize] as f64
    }

    /// V2V distance query.
    pub fn distance_vertices(&self, a: VertexId, b: VertexId) -> f64 {
        self.distance_nodes(a, b)
    }

    /// A2A/P2P distance query between arbitrary surface points.
    pub fn distance(&self, s: &SurfacePoint, t: &SurfacePoint) -> f64 {
        let ns = self.neighborhood(s.face);
        let nt = self.neighborhood(t.face);
        let mut best = if s.face == t.face { s.pos.dist(t.pos) } else { f64::INFINITY };
        for &p in &ns {
            let sp = s.pos.dist(self.graph.position(p));
            if sp >= best {
                continue;
            }
            for &q in &nt {
                let d = sp + self.distance_nodes(p, q) + self.graph.position(q).dist(t.pos);
                if d < best {
                    best = d;
                }
            }
        }
        best
    }

    /// Query by x–y projection; `None` outside the footprint.
    pub fn distance_xy(&self, a: (f64, f64), b: (f64, f64)) -> Option<f64> {
        let (fa, pa) = self.locator.locate(&self.mesh, a.0, a.1)?;
        let (fb, pb) = self.locator.locate(&self.mesh, b.0, b.1)?;
        Some(
            self.distance(&SurfacePoint { face: fa, pos: pa }, &SurfacePoint { face: fb, pos: pb }),
        )
    }

    fn neighborhood(&self, f: FaceId) -> Vec<NodeId> {
        let mut out = self.graph.face_nodes(f);
        for e in self.mesh.face_edges(f) {
            if let Some(g) = self.mesh.other_face(e, f) {
                out.extend(self.graph.face_nodes(g));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    pub fn graph(&self) -> &Arc<SteinerGraph> {
        &self.graph
    }

    /// Oracle size: the all-pairs matrix plus graph/locator state.
    pub fn storage_bytes(&self) -> usize {
        self.matrix.len() * std::mem::size_of::<f32>()
            + self.graph.storage_bytes()
            + self.locator.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodesic::engine::{GeodesicEngine, Stop};
    use geodesic::ich::IchEngine;
    use terrain::gen::{diamond_square, Heightfield};
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    #[test]
    fn v2v_matches_graph_distance() {
        let mesh = Arc::new(diamond_square(3, 0.6, 1).to_mesh());
        let o = SpOracle::build(mesh.clone(), 1, usize::MAX, 1).unwrap();
        let g = o.graph().clone();
        for (a, b) in [(0u32, 80u32), (5, 44), (12, 13)] {
            let expect = g.distance(a, b);
            assert!((o.distance_vertices(a, b) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_apsp_matches_serial() {
        let mesh = Arc::new(Heightfield::flat(4, 4, 1.0, 1.0).to_mesh());
        let a = SpOracle::build(mesh.clone(), 1, usize::MAX, 1).unwrap();
        let b = SpOracle::build(mesh.clone(), 1, usize::MAX, 4).unwrap();
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn memory_budget_enforced() {
        let mesh = Arc::new(Heightfield::flat(8, 8, 1.0, 1.0).to_mesh());
        let r = SpOracle::build(mesh, 3, 1024, 1);
        assert!(matches!(r, Err(SpOracleError::ExceedsMemoryBudget { .. })));
    }

    #[test]
    fn flat_grid_points_close_to_euclidean() {
        let mesh = Arc::new(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh());
        let o = SpOracle::build(mesh, 2, usize::MAX, 1).unwrap();
        let d = o.distance_xy((0.3, 0.3), (3.7, 3.4)).unwrap();
        let exact = ((3.7f64 - 0.3).powi(2) + (3.4f64 - 0.3).powi(2)).sqrt();
        assert!(d >= exact - 1e-6);
        assert!(d <= exact * 1.2, "{d} vs {exact}");
    }

    #[test]
    fn close_to_exact_geodesic() {
        // The query combines straight 3-D chords (query point → Steiner
        // node, per §4.2.1) with indexed graph distances. A chord may cut
        // marginally below the surface, so the estimate can undershoot the
        // true geodesic by the chord-vs-surface gap of one face
        // neighbourhood; both sides of the error band must stay small.
        let mesh = diamond_square(3, 0.6, 7).to_mesh();
        let pois = sample_uniform(&mesh, 8, 3);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let exact_eng = IchEngine::new(Arc::new(refined.mesh));
        let o = SpOracle::build(Arc::new(mesh), 2, usize::MAX, 2).unwrap();
        for i in 0..8 {
            for j in i + 1..8 {
                let approx = o.distance(&pois[i], &pois[j]);
                let exact = exact_eng
                    .ssad(refined.poi_vertices[i], Stop::Targets(&[refined.poi_vertices[j]]))
                    .dist[refined.poi_vertices[j] as usize];
                assert!(approx >= exact * 0.95 - 1e-9, "far below geodesic: {approx} < {exact}");
                assert!(approx <= exact * 1.3 + 1e-9, "too loose: {approx} vs {exact}");
            }
        }
    }

    #[test]
    fn storage_grows_quadratically_with_steiner_points() {
        let mesh = Arc::new(Heightfield::flat(4, 4, 1.0, 1.0).to_mesh());
        let small = SpOracle::build(mesh.clone(), 0, usize::MAX, 1).unwrap();
        let big = SpOracle::build(mesh.clone(), 3, usize::MAX, 1).unwrap();
        let node_ratio = big.n_nodes() as f64 / small.n_nodes() as f64;
        let size_ratio = big.storage_bytes() as f64 / small.storage_bytes() as f64;
        assert!(size_ratio > node_ratio * node_ratio * 0.5, "{size_ratio} vs {node_ratio}");
    }
}
