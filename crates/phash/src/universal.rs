//! Universal hashing over `u64` keys.
//!
//! A multiply-shift family: `h(x) = ((a·x + b) >> s) mod m` with odd random
//! `a`. Multiply-shift is 2-approximately universal, which is all the FKS
//! analysis needs (collision probability `O(1/m)` per pair).

/// One member of a universal family of hash functions `u64 -> [0, m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniversalHash {
    a: u64,
    b: u64,
    m: u64,
}

impl UniversalHash {
    /// Draws a member of the family from `seed` mapping into `[0, m)`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn from_seed(seed: u64, m: usize) -> Self {
        assert!(m > 0, "hash range must be non-empty");
        // SplitMix64 to decorrelate consecutive seeds.
        let a = splitmix64(seed) | 1; // odd multiplier
        let b = splitmix64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
        Self { a, b, m: m as u64 }
    }

    /// Hashes `key` to a bucket in `[0, m)`.
    #[inline]
    pub fn hash(&self, key: u64) -> usize {
        // Mix, then reduce by multiplication (Lemire) to avoid modulo bias
        // mattering and division cost.
        let x = self.a.wrapping_mul(key).wrapping_add(self.b);
        let x = x ^ (x >> 29);
        (((x as u128) * (self.m as u128)) >> 64) as usize
    }

    /// The size of the hash range.
    #[inline]
    pub fn range(&self) -> usize {
        self.m as usize
    }
}

/// SplitMix64 step, the standard seed expander: advances `z` by the
/// golden-ratio increment and finalizes. Exported because every layer
/// that derives independent deterministic streams from one user seed
/// (per-bucket hash draws here, per-center RNGs in β-estimation,
/// per-thread workloads in tests and examples) needs exactly this mix.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range() {
        let h = UniversalHash::from_seed(123, 17);
        for k in 0..10_000u64 {
            assert!(h.hash(k) < 17);
        }
    }

    #[test]
    fn range_one_maps_everything_to_zero() {
        let h = UniversalHash::from_seed(5, 1);
        for k in [0u64, 1, u64::MAX, 42] {
            assert_eq!(h.hash(k), 0);
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let h1 = UniversalHash::from_seed(1, 1024);
        let h2 = UniversalHash::from_seed(2, 1024);
        let diff = (0..1000u64).filter(|&k| h1.hash(k) != h2.hash(k)).count();
        assert!(diff > 500, "families should decorrelate, got {diff}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let m = 64;
        let h = UniversalHash::from_seed(99, m);
        let mut counts = vec![0usize; m];
        let samples = 64_000u64;
        for k in 0..samples {
            counts[h.hash(k.wrapping_mul(0x2545F4914F6CDD1D))] += 1;
        }
        let expected = samples as usize / m;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 4 && c < expected * 4,
                "bucket {i} has {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_range_panics() {
        let _ = UniversalHash::from_seed(0, 0);
    }
}
