//! The two-level FKS perfect map.

// lint: query-path
use crate::universal::{splitmix64, UniversalHash};

/// Sentinel for empty second-level slots.
const EMPTY: u32 = u32::MAX;

/// A static perfect-hash map from `u64` keys to values `V`.
///
/// Built once from a list of distinct keys; afterwards [`PerfectMap::get`]
/// runs in worst-case `O(1)` (two hash evaluations, one key comparison) and
/// never collides. Construction runs in expected `O(n)`.
///
/// Values are stored in one contiguous `Vec<V>` in insertion order; the hash
/// structure stores `u32` indices into it, so memory overhead is
/// `~12 bytes × O(n)` on top of the values.
///
/// # Determinism
///
/// Unlike `std::collections::HashMap`, whose `RandomState` draws a fresh
/// sip-hash key per process and therefore randomizes iteration order,
/// `PerfectMap` is a pure function of `(entries, seed)`:
///
/// - every hash function is a [`UniversalHash`] derived from the explicit
///   `seed` via [`splitmix64`] — no ambient randomness, no per-process state;
/// - [`PerfectMap::iter`] walks the `keys`/`values` vectors directly, so
///   iteration order is exactly the insertion order of `entries` and does
///   not depend on the seed or on the hash layout at all.
///
/// This is why the oracle-lint D1 (hash-order) rule does not apply to this
/// type: two builds from the same entry list produce bit-identical images
/// and identical iteration, which `same_inputs_build_identical_images` and
/// `iteration_order_ignores_seed` pin down in the test suite.
#[derive(Debug, Clone)]
pub struct PerfectMap<V> {
    level1: UniversalHash,
    /// Per-bucket second-level function, `None` for empty buckets.
    buckets: Vec<Option<Bucket>>,
    /// Flat second-level slot storage; each slot is an index into
    /// `keys`/`values` or `EMPTY`.
    slots: Vec<u32>,
    keys: Vec<u64>,
    values: Vec<V>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    hash: UniversalHash,
    /// Offset of this bucket's slot range inside `slots`.
    offset: u32,
}

impl<V> PerfectMap<V> {
    /// Builds a perfect map over `entries`.
    ///
    /// # Panics
    /// Panics if two entries share a key — the SE oracle guarantees
    /// distinct node pairs, so a duplicate indicates a logic error upstream
    /// and must not be masked.
    pub fn build(entries: Vec<(u64, V)>, seed: u64) -> Self {
        let n = entries.len();
        let (keys, values): (Vec<u64>, Vec<V>) = entries.into_iter().unzip();

        if n == 0 {
            return Self {
                level1: UniversalHash::from_seed(seed, 1),
                buckets: vec![None],
                slots: Vec::new(),
                keys,
                values,
            };
        }

        // Level 1: try seeds until total second-level space is linear.
        let m = n.max(1);
        let mut attempt = 0u64;
        let (level1, groups) = loop {
            let h = UniversalHash::from_seed(splitmix64(seed ^ attempt), m);
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); m];
            for (i, &k) in keys.iter().enumerate() {
                groups[h.hash(k)].push(i as u32);
            }
            let space: usize = groups.iter().map(|g| g.len() * g.len()).sum();
            if space <= 4 * n {
                break (h, groups);
            }
            attempt += 1;
            assert!(
                attempt < 64,
                "FKS level-1 failed to find a linear-space split in 64 draws; \
                 keys are likely duplicated"
            );
        };

        // Level 2: per bucket, draw until injective on the bucket.
        let mut buckets: Vec<Option<Bucket>> = vec![None; m];
        let mut slots: Vec<u32> = Vec::new();
        for (b, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if group.len() >= 2 {
                let k0 = keys[group[0] as usize];
                for &gi in &group[1..] {
                    assert_ne!(keys[gi as usize], k0, "duplicate key {k0:#x} in PerfectMap");
                }
            }
            let size = group.len() * group.len();
            let offset = slots.len() as u32;
            let mut attempt = 0u64;
            let h2 = loop {
                let h2 = UniversalHash::from_seed(
                    splitmix64(seed ^ (b as u64) ^ (attempt << 32) ^ 0xabcd_ef12),
                    size,
                );
                if is_injective(&keys, group, &h2) {
                    break h2;
                }
                attempt += 1;
                assert!(
                    attempt < 4096,
                    "FKS level-2 failed on bucket of size {}; duplicate keys?",
                    group.len()
                );
            };
            slots.resize(slots.len() + size, EMPTY);
            for &gi in group {
                let s = h2.hash(keys[gi as usize]);
                debug_assert_eq!(slots[offset as usize + s], EMPTY);
                slots[offset as usize + s] = gi;
            }
            buckets[b] = Some(Bucket { hash: h2, offset });
        }

        Self { level1, buckets, slots, keys, values }
    }

    /// Looks up `key`, returning a reference to its value if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let b = self.buckets[self.level1.hash(key)]?;
        let slot = self.slots[b.offset as usize + b.hash.hash(key)];
        if slot == EMPTY || self.keys[slot as usize] != key {
            return None;
        }
        Some(&self.values[slot as usize])
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(key, &value)` in insertion order.
    ///
    /// The order is a property of the entry list passed to
    /// [`PerfectMap::build`], not of the hash structure: it is identical
    /// across builds, seeds, processes, and thread counts.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys.iter().copied().zip(self.values.iter())
    }

    /// Heap bytes used by the hash structure *and* the values
    /// (`size_of::<V>()` each; inner allocations of `V` are not followed).
    pub fn storage_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Option<Bucket>>()
            + self.slots.len() * std::mem::size_of::<u32>()
            + self.keys.len() * std::mem::size_of::<u64>()
            + self.values.len() * std::mem::size_of::<V>()
    }
}

fn is_injective(keys: &[u64], group: &[u32], h: &UniversalHash) -> bool {
    // Buckets are small (expected O(1)); a stack bitset up to 64 entries
    // covers the common case, falling back to a Vec for big buckets.
    let size = h.range();
    if size <= 64 {
        let mut mask = 0u64;
        for &gi in group {
            let s = h.hash(keys[gi as usize]);
            let bit = 1u64 << s;
            if mask & bit != 0 {
                return false;
            }
            mask |= bit;
        }
        true
    } else {
        let mut seen = vec![false; size];
        for &gi in group {
            let s = h.hash(keys[gi as usize]);
            if seen[s] {
                return false;
            }
            seen[s] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn build_random(n: usize, seed: u64) -> (PerfectMap<usize>, HashMap<u64, usize>) {
        // Deterministic pseudo-random distinct keys.
        let mut reference = HashMap::new();
        let mut entries = Vec::new();
        let mut x = seed | 1;
        while entries.len() < n {
            x = splitmix64(x);
            if reference.insert(x, entries.len()).is_none() {
                entries.push((x, entries.len()));
            }
        }
        (PerfectMap::build(entries, seed), reference)
    }

    #[test]
    fn empty_map() {
        let map: PerfectMap<i32> = PerfectMap::build(vec![], 7);
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.get(0), None);
        assert_eq!(map.get(u64::MAX), None);
    }

    #[test]
    fn single_entry() {
        let map = PerfectMap::build(vec![(42u64, "x")], 0);
        assert_eq!(map.get(42), Some(&"x"));
        assert_eq!(map.get(43), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn all_present_none_missing() {
        for seed in 0..5 {
            let (map, reference) = build_random(1000, seed);
            for (&k, &v) in &reference {
                assert_eq!(map.get(k), Some(&v), "key {k:#x} seed {seed}");
            }
            // Probe keys that are not present.
            let mut x = 0xdead_beefu64 ^ seed;
            for _ in 0..1000 {
                x = splitmix64(x);
                if !reference.contains_key(&x) {
                    assert_eq!(map.get(x), None);
                }
            }
        }
    }

    #[test]
    fn space_is_linear() {
        let (map, _) = build_random(10_000, 3);
        // Slots ≤ 4n by construction; total bytes should be well under
        // 100 bytes/entry.
        assert!(map.slots.len() <= 4 * 10_000);
        assert!(map.storage_bytes() < 100 * 10_000);
    }

    #[test]
    fn iter_returns_everything_in_order() {
        let entries = vec![(5u64, 'a'), (9, 'b'), (1, 'c')];
        let map = PerfectMap::build(entries.clone(), 11);
        let collected: Vec<(u64, char)> = map.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(collected, entries);
    }

    #[test]
    fn iteration_order_ignores_seed() {
        // The D1 whitelist rests on this: iteration order is the insertion
        // order of the entry list, no matter which seed shaped the hash
        // structure.
        let entries: Vec<(u64, u32)> =
            (0..500u64).map(|k| (splitmix64(k ^ 0x5eed), k as u32)).collect();
        let reference: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
        for seed in [0, 1, 7, 0xdead_beef] {
            let map = PerfectMap::build(entries.clone(), seed);
            let order: Vec<u64> = map.iter().map(|(k, _)| k).collect();
            assert_eq!(order, reference, "seed {seed} changed iteration order");
        }
    }

    #[test]
    fn same_inputs_build_identical_images() {
        // Full structural determinism: same entries + same seed must yield
        // byte-identical hash layout, not just equal lookups.
        let entries: Vec<(u64, u32)> = (0..2000u64).map(|k| (splitmix64(k), k as u32)).collect();
        let a = PerfectMap::build(entries.clone(), 42);
        let b = PerfectMap::build(entries, 42);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.values, b.values);
        assert_eq!(a.buckets.len(), b.buckets.len());
        for (x, y) in a.buckets.iter().zip(&b.buckets) {
            match (x, y) {
                (None, None) => {}
                (Some(p), Some(q)) => assert_eq!(p.offset, q.offset),
                _ => panic!("bucket occupancy diverged between identical builds"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_keys_panic() {
        let _ = PerfectMap::build(vec![(1u64, 0), (1u64, 1)], 0);
    }

    #[test]
    fn adversarial_keys_sequential() {
        // Sequential keys are a classic weak spot for multiply-shift; the
        // retry loop must still terminate and produce a perfect map.
        let entries: Vec<(u64, u64)> = (0..5000u64).map(|k| (k, k * 2)).collect();
        let map = PerfectMap::build(entries, 1);
        for k in 0..5000u64 {
            assert_eq!(map.get(k), Some(&(k * 2)));
        }
        assert_eq!(map.get(5000), None);
    }

    #[test]
    fn adversarial_keys_high_bits() {
        let entries: Vec<(u64, u64)> = (0..3000u64).map(|k| (k << 32, k)).collect();
        let map = PerfectMap::build(entries, 2);
        for k in 0..3000u64 {
            assert_eq!(map.get(k << 32), Some(&k));
        }
        assert_eq!(map.get(1), None);
    }
}
