//! FKS-style two-level perfect hashing for `u64` keys.
//!
//! The SE oracle of Wei et al. (SIGMOD 2017) indexes its node-pair set and its
//! enhanced-edge set with "a standard hashing technique, namely the perfect
//! hashing scheme" (citing CLRS). This crate provides that substrate: a static
//! map from `u64` keys to values built in expected linear time that answers
//! lookups in worst-case constant time with zero collisions.
//!
//! # Scheme
//!
//! The classic Fredman–Komlós–Szemerédi construction: a first-level universal
//! hash function distributes the `n` keys into `n` buckets; each bucket with
//! `b` keys gets a second-level table of size `b²` whose hash function is
//! re-drawn until it is injective on the bucket. Choosing first-level functions
//! until `Σ b²  ≤ 4n` keeps total space linear in expectation.
//!
//! # Example
//!
//! ```
//! use phash::PerfectMap;
//! let map = PerfectMap::build(vec![(10u64, "a"), (20, "b"), (7, "c")], 42);
//! assert_eq!(map.get(20), Some(&"b"));
//! assert_eq!(map.get(99), None);
//! assert_eq!(map.len(), 3);
//! ```

#![forbid(unsafe_code)]
mod map;
mod universal;

pub use map::PerfectMap;
pub use universal::{splitmix64, UniversalHash};

/// Packs an ordered pair of 32-bit identifiers into a single `u64` key.
///
/// Node pairs in the SE oracle are *ordered* (`⟨O, O'⟩` differs from
/// `⟨O', O⟩`), so no symmetrisation is applied.
#[inline]
pub const fn pair_key(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | (b as u64)
}

/// Unpacks a key produced by [`pair_key`].
#[inline]
pub const fn unpair_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_key_roundtrip() {
        for &(a, b) in &[(0, 0), (1, 2), (u32::MAX, 0), (0, u32::MAX), (7, 7)] {
            assert_eq!(unpair_key(pair_key(a, b)), (a, b));
        }
    }

    #[test]
    fn pair_key_is_order_sensitive() {
        assert_ne!(pair_key(1, 2), pair_key(2, 1));
    }
}
