//! Deterministic value-generation strategies: ranges, tuples, vectors,
//! `Just`, and constant values. No shrinking — see the crate docs.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tuple_and_vec_sampling() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = crate::collection::vec((0u8..3, 0usize..24), 1..24);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 24);
            for (a, b) in v {
                assert!(a < 3 && b < 24);
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }
}
