//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset this workspace's property suite uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]` header;
//! * range, tuple and [`collection::vec`] strategies;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig`] with `cases` and `rng_seed` knobs.
//!
//! Unlike upstream there is **no shrinking** and no persistence of failing
//! cases: every run is fully deterministic (the per-test RNG is seeded from
//! `rng_seed` mixed with the test name), so a failure reproduces exactly by
//! re-running the same test binary — which is the property the repo's
//! `proptest-regressions/` policy relies on.

use std::fmt;

pub mod strategy;

pub use strategy::Strategy;

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Base RNG seed; mixed with the test's name so sibling tests draw
    /// different-but-reproducible streams.
    pub rng_seed: u64,
    /// Accepted for upstream compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, rng_seed: 0x5EED_0D15_7A9C_E017, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case disproved the property.
    Fail(String),
    /// The case was rejected as invalid input (counts against no budget here).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type the body of a `proptest!` test is wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError, TestCaseResult};
    pub use rand::rngs::StdRng as TestRng;
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `Vec` strategy with a uniformly drawn length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }
}

/// FNV-1a over the test name: mixes per-test entropy into the base seed so
/// every test in a block draws an independent, reproducible stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// The core macro: expands each `fn name(arg in strategy, ..) { body }` item
/// into a plain `#[test]` (the caller writes the attribute) that samples the
/// strategies `config.cases` times and runs the body as a fallible closure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::__run_cases(
                    &config,
                    stringify!($name),
                    |__proptest_rng| {
                        $( let $arg = $crate::Strategy::sample(&($strat), &mut *__proptest_rng); )+
                        let __proptest_body = move || -> $crate::TestCaseResult {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        };
                        __proptest_body()
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $( $arg in $strat ),+ ) $body )*
        }
    };
}

/// Runs one test's cases; not public API (the macro calls it).
#[doc(hidden)]
pub fn __run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut test_runner::TestRng) -> TestCaseResult,
) {
    use rand::SeedableRng;
    let mut rng = test_runner::TestRng::seed_from_u64(config.rng_seed ^ fnv1a(name));
    let mut ran = 0u32;
    let mut attempts = 0u32;
    while ran < config.cases {
        attempts += 1;
        assert!(
            attempts <= config.cases.saturating_mul(10).max(64),
            "proptest `{name}`: too many rejected cases ({ran}/{} accepted)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(reason)) => panic!(
                "proptest `{name}` failed at case {}/{} (seed {:#x}): {reason}",
                ran + 1,
                config.cases,
                config.rng_seed,
            ),
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (re-drawn, within a bounded attempt budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
