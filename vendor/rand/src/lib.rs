//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses — `rand::rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`], [`Rng::random_bool`] —
//! with the `rand 0.9` method names. The generator is xoshiro256++ seeded via
//! SplitMix64, which is deterministic across platforms; it is **not** intended
//! to be bit-compatible with upstream `rand`, only drop-in source compatible.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 — the upstream default.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// Panics on an empty range, like upstream.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a supported primitive type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::random`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform in `[0, 1)` with 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::random_range`] accepts (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let r = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let r = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(r)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `StdRng` (ChaCha12), but fast,
    /// high-quality and fully deterministic from `seed_from_u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias so `SmallRng`-flavoured code also compiles.
    pub type SmallRng = StdRng;
}

/// A fresh generator seeded from the system clock and a counter
/// (mirrors `rand::rng()`; entropy quality is irrelevant for tests).
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    rngs::StdRng::seed_from_u64(nanos ^ COUNTER.fetch_add(1, Ordering::Relaxed).rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.random_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z: u64 = rng.random_range(0..=5);
            assert!(z <= 5);
            let w: i32 = rng.random_range(-10..10);
            assert!((-10..10).contains(&w));
        }
    }

    #[test]
    fn bool_prob_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
