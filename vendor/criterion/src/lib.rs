//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate. The build environment has no crates.io access, so this vendored
//! crate implements the API surface the workspace's benches use —
//! `Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_with_setup}`,
//! [`BenchmarkId`], [`criterion_group!`] / [`criterion_main!`] — with a
//! simple wall-clock measurement loop instead of criterion's statistics.
//!
//! Each benchmark warms up once, then runs batches until ~`measurement_time`
//! (default 1 s, or the sample count if smaller) and reports mean ns/iter on
//! stdout. Honors `--bench`/`--test` harness flags enough for
//! `cargo bench`/`cargo test` to drive it; under `cargo test` benches run a
//! single iteration as a smoke check.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

/// Anything benches pass as a bench name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    /// Total time measured across all iterations of the routine.
    elapsed: Duration,
    /// Iterations performed.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (not measured).
        std::hint::black_box(routine());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only `routine` counts.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        std::hint::black_box(routine(setup()));
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<48} (no measurement)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (scaled, unit) = if ns >= 1e9 {
            (ns / 1e9, "s")
        } else if ns >= 1e6 {
            (ns / 1e6, "ms")
        } else if ns >= 1e3 {
            (ns / 1e3, "µs")
        } else {
            (ns, "ns")
        };
        println!("{label:<48} {scaled:>10.3} {unit}/iter ({} iters)", self.iters);
    }
}

/// Top-level harness state.
pub struct Criterion {
    measurement_time: Duration,
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; `cargo test` passes `--test` (plus
        // possibly a filter). In test mode run a single quick iteration.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let smoke = args.iter().any(|a| a == "--test");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Self { measurement_time: Duration::from_secs(1), filter, smoke }
    }
}

impl Criterion {
    /// Upstream-compatible builder: global measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Upstream-compatible no-op (sampling is time-driven here).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), budget: None }
    }

    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let id = id.into_benchmark_id();
        self.run_one(&id.name, f);
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let budget = if self.smoke { Duration::ZERO } else { self.measurement_time };
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, budget };
        f(&mut b);
        b.report(label);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    budget: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Upstream-compatible no-op (sampling is time-driven here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement budget for every bench in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.budget = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let label = format!("{}/{}", self.name, id.name);
        if let Some(budget) = self.budget {
            let saved = self.c.measurement_time;
            self.c.measurement_time = budget;
            self.c.run_one(&label, f);
            self.c.measurement_time = saved;
        } else {
            self.c.run_one(&label, f);
        }
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Re-export so `criterion::black_box` call sites compile.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
