//! Shared fixtures for the integration suite: small deterministic meshes,
//! seeded POI sets, and the refined-mesh → site-space plumbing every layer
//! of the stack needs.
//!
//! Every fixture is a pure function of its seed, so any failure anywhere in
//! the suite reproduces exactly from the test name and the literals at the
//! call site. Mesh seeds and POI seeds are decoupled (`POI_SALT`) so that
//! varying one never silently reshuffles the other.
//!
//! Not every test file uses every helper, hence the `dead_code` allowance —
//! integration tests each compile this module independently.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::Arc;
use terrain_oracle::geodesic::{EdgeGraphEngine, IchEngine, VertexSiteSpace};
use terrain_oracle::oracle::BuildConfig;
use terrain_oracle::prelude::*;
use terrain_oracle::terrain::refine::RefineResult;

/// Decouples POI sampling from mesh generation under a single caller seed.
pub const POI_SALT: u64 = 0xBEEF;

/// Small fractal terrain: `diamond_square` level `k` (grid `(2^k + 1)^2`),
/// roughness `rough`.
pub fn fractal_mesh(k: u32, rough: f64, seed: u64) -> TerrainMesh {
    diamond_square(k, rough, seed).to_mesh()
}

/// [`fractal_mesh`] behind an `Arc` (what the geodesic engines take).
pub fn fractal_mesh_arc(k: u32, rough: f64, seed: u64) -> Arc<TerrainMesh> {
    Arc::new(fractal_mesh(k, rough, seed))
}

/// A fractal mesh plus `n` uniformly sampled POIs on it, both derived from
/// one seed.
pub fn mesh_with_pois(k: u32, rough: f64, seed: u64, n: usize) -> (TerrainMesh, Vec<SurfacePoint>) {
    let mesh = fractal_mesh(k, rough, seed);
    let pois = sample_uniform(&mesh, n, seed ^ POI_SALT);
    (mesh, pois)
}

/// [`mesh_with_pois`] with the mesh behind an `Arc`.
pub fn mesh_with_pois_arc(
    k: u32,
    rough: f64,
    seed: u64,
    n: usize,
) -> (Arc<TerrainMesh>, Vec<SurfacePoint>) {
    let (mesh, pois) = mesh_with_pois(k, rough, seed, n);
    (Arc::new(mesh), pois)
}

/// The standard small P2P oracle fixture: level-4 fractal, `n` POIs,
/// `BuildConfig::default()`.
pub fn build_p2p(seed: u64, n: usize, eps: f64, engine: EngineKind) -> P2POracle {
    let (mesh, pois) = mesh_with_pois(4, 0.6, seed, n);
    P2POracle::build(&mesh, &pois, eps, engine, &BuildConfig::default()).unwrap()
}

/// Refines `pois` into `mesh` and returns the refined mesh together with
/// the deduplicated, sorted site vertex list — the prelude to every
/// site-space construction.
pub fn refine_sites(mesh: &TerrainMesh, pois: &[SurfacePoint]) -> (RefineResult, Vec<u32>) {
    let refined = insert_surface_points(mesh, pois, None).unwrap();
    let mut sites = refined.poi_vertices.clone();
    sites.sort_unstable();
    sites.dedup();
    (refined, sites)
}

/// Vertex site space over the refined mesh with an **exact** (ICH) engine.
pub fn exact_vertex_space(mesh: &TerrainMesh, pois: &[SurfacePoint]) -> VertexSiteSpace {
    let (refined, sites) = refine_sites(mesh, pois);
    VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites)
}

/// Vertex site space over the refined mesh with an **edge-graph** engine
/// (fast upper-bound approximation; what the churn-heavy tests use).
pub fn edge_graph_vertex_space(mesh: &TerrainMesh, pois: &[SurfacePoint]) -> VertexSiteSpace {
    let (refined, sites) = refine_sites(mesh, pois);
    VertexSiteSpace::new(Arc::new(EdgeGraphEngine::new(Arc::new(refined.mesh))), sites)
}

/// A process-unique scratch directory under the system temp dir.
pub fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("terrain-oracle-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
