//! End-to-end tests of the `terrain-oracle` CLI binary: generate a mesh,
//! build an oracle image, inspect and query it — the full operator
//! workflow through real process invocations.

mod common;

use common::tmp_dir;
use std::process::{Command, Output};

/// Cargo-provided path to the compiled CLI, valid in any profile.
fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_terrain-oracle")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn CLI")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn full_workflow_gen_build_info_query_knn() {
    let dir = tmp_dir("flow");
    let mesh = dir.join("t.off");
    let pois = dir.join("p.csv");
    let image = dir.join("o.seor");

    // gen
    let o =
        run(&["gen", "--preset", "sf-small", "--scale", "0.3", "--out", mesh.to_str().unwrap()]);
    assert!(o.status.success(), "gen failed: {}", stderr(&o));
    assert!(mesh.exists());

    // POIs inside the SF-small footprint (1400 × 1110 m).
    std::fs::write(
        &pois,
        "# landmark grid\n100,100\n700,300\n1200,900\n300,800\n900,600\n500,200\n",
    )
    .unwrap();

    // build
    let o = run(&[
        "build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.15",
        "--out",
        image.to_str().unwrap(),
        "--engine",
        "exact",
    ]);
    assert!(o.status.success(), "build failed: {}", stderr(&o));
    assert!(image.exists());

    // info
    let o = run(&["info", "--oracle", image.to_str().unwrap()]);
    assert!(o.status.success(), "info failed: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("sites:   6"), "info output:\n{out}");
    assert!(out.contains("epsilon: 0.15"), "info output:\n{out}");

    // query
    let o = run(&["query", "--oracle", image.to_str().unwrap(), "--pairs", "0 1", "2 3"]);
    assert!(o.status.success(), "query failed: {}", stderr(&o));
    let out = stdout(&o);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        let d: f64 = line.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!(d > 0.0 && d < 3000.0, "implausible distance in '{line}'");
    }

    // knn
    let o = run(&["knn", "--oracle", image.to_str().unwrap(), "--site", "0", "--k", "3"]);
    assert!(o.status.success(), "knn failed: {}", stderr(&o));
    let out = stdout(&o);
    assert_eq!(out.lines().count(), 3, "knn output:\n{out}");
    // Ascending distances.
    let ds: Vec<f64> =
        out.lines().map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap()).collect();
    assert!(ds.windows(2).all(|w| w[0] <= w[1]), "knn not sorted: {ds:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn path_and_detour_workflow() {
    let dir = tmp_dir("pathflow");
    let mesh = dir.join("t.off");
    let pois = dir.join("p.csv");

    let o =
        run(&["gen", "--preset", "sf-small", "--scale", "0.3", "--out", mesh.to_str().unwrap()]);
    assert!(o.status.success(), "gen failed: {}", stderr(&o));
    std::fs::write(&pois, "100,100\n700,300\n1200,900\n300,800\n900,600\n500,200\n").unwrap();
    let (mesh, pois) = (mesh.to_str().unwrap(), pois.to_str().unwrap());

    // query-path: one line per pair, `<s> <t> <distance> <length> <points>`
    // with the EPS_PATH ceiling holding (exact engine default).
    let o = run(&[
        "query-path",
        "--mesh",
        mesh,
        "--pois",
        pois,
        "--eps",
        "0.15",
        "--pairs",
        "0 2",
        "1 4",
        "3 3",
    ]);
    assert!(o.status.success(), "query-path failed: {}", stderr(&o));
    let out = stdout(&o);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "query-path output:\n{out}");
    for line in &lines[..2] {
        let f: Vec<f64> = line.split_whitespace().map(|x| x.parse().unwrap()).collect();
        assert_eq!(f.len(), 5, "bad line '{line}'");
        let (d, len, pts) = (f[2], f[3], f[4]);
        assert!(d > 0.0 && len >= d / 1.15 - 1e-9 && len <= d * 1.5 + 1e-9, "'{line}'");
        assert!(pts >= 2.0, "'{line}'");
    }
    assert!(lines[2].ends_with(" 0 0 1"), "degenerate pair line: '{}'", lines[2]);

    // query-detour: every other POI fits inside a huge budget, sorted by
    // total detour length, with total = d(s,p) + d(p,t).
    let o = run(&[
        "query-detour",
        "--mesh",
        mesh,
        "--pois",
        pois,
        "--eps",
        "0.15",
        "--from",
        "0",
        "--to",
        "2",
        "--delta",
        "1e9",
    ]);
    assert!(o.status.success(), "query-detour failed: {}", stderr(&o));
    let out = stdout(&o);
    assert_eq!(out.lines().count(), 4, "query-detour output:\n{out}");
    let mut prev_total = 0.0;
    for line in out.lines() {
        let f: Vec<f64> = line.split_whitespace().map(|x| x.parse().unwrap()).collect();
        assert_eq!(f.len(), 4, "bad line '{line}'");
        assert!((f[1] + f[2] - f[3]).abs() <= 1e-9, "total mismatch in '{line}'");
        assert!(f[3] >= prev_total, "not sorted by total: '{line}'");
        prev_total = f[3];
    }

    // A zero budget keeps only POIs already on a shortest path — none, on
    // this spread-out fixture.
    let o = run(&[
        "query-detour",
        "--mesh",
        mesh,
        "--pois",
        pois,
        "--eps",
        "0.15",
        "--from",
        "0",
        "--to",
        "2",
        "--delta",
        "0",
    ]);
    assert!(o.status.success(), "zero-delta query-detour failed: {}", stderr(&o));
    assert!(stdout(&o).is_empty(), "zero budget admitted POIs:\n{}", stdout(&o));

    // Errors: negative budget, missing pairs, out-of-range ids.
    let o = run(&[
        "query-detour",
        "--mesh",
        mesh,
        "--pois",
        pois,
        "--eps",
        "0.15",
        "--from",
        "0",
        "--to",
        "2",
        "--delta",
        "-1",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("non-negative"), "{}", stderr(&o));

    let o = run(&["query-path", "--mesh", mesh, "--pois", pois, "--eps", "0.15"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--pairs"), "{}", stderr(&o));

    let o =
        run(&["query-path", "--mesh", mesh, "--pois", pois, "--eps", "0.15", "--pairs", "0 99"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"), "{}", stderr(&o));

    std::fs::remove_dir_all(std::path::Path::new(mesh).parent().unwrap()).ok();
}

#[test]
fn helpful_errors_and_usage() {
    // No args → usage on stdout, success.
    let o = run(&[]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));

    // Unknown command.
    let o = run(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));

    // Missing required option.
    let o = run(&["info"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--oracle"));

    // Nonexistent oracle file.
    let o = run(&["info", "--oracle", "/nonexistent/path.seor"]);
    assert!(!o.status.success());

    // Bad epsilon.
    let o = run(&["build", "--mesh", "x", "--pois", "y", "--eps", "nope", "--out", "z"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--eps"));

    // Unknown stray option.
    let o = run(&["info", "--oracle", "x", "--bogus", "1"]);
    assert!(!o.status.success());
}

#[test]
fn query_batch_happy_path_file_and_stdin() {
    let dir = tmp_dir("batch");
    let mesh = dir.join("t.off");
    let pois = dir.join("p.csv");
    let image = dir.join("o.seor");
    run(&["gen", "--preset", "sf-small", "--scale", "0.3", "--out", mesh.to_str().unwrap()]);
    std::fs::write(&pois, "100,100\n700,300\n1200,900\n300,800\n900,600\n500,200\n").unwrap();
    let o = run(&[
        "build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        image.to_str().unwrap(),
        "--engine",
        "edge",
    ]);
    assert!(o.status.success(), "build failed: {}", stderr(&o));

    // From a pairs file, with comments, blank lines and repeated pairs.
    let pairs = dir.join("pairs.txt");
    std::fs::write(&pairs, "# batch workload\n0 1\n\n2 3\n4 5\n0 1\n1 0\n").unwrap();
    let o = run(&[
        "query-batch",
        "--oracle",
        image.to_str().unwrap(),
        "--pairs-file",
        pairs.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert!(o.status.success(), "query-batch failed: {}", stderr(&o));
    let out = stdout(&o);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 5, "one output line per pair:\n{out}");
    let dist = |line: &str| -> f64 { line.split_whitespace().nth(2).unwrap().parse().unwrap() };
    for line in &lines {
        let d = dist(line);
        assert!(d > 0.0 && d < 3000.0, "implausible distance in '{line}'");
    }
    // Repeated pair and its swap answer identically.
    assert_eq!(lines[0], lines[3], "repeated pair must repeat its answer");
    assert_eq!(dist(lines[0]), dist(lines[4]), "distance is symmetric");

    // Same pairs over stdin must produce the same distances; batch answers
    // also agree with the single-pair `query` command.
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(bin())
        .args(["query-batch", "--oracle", image.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn CLI");
    child.stdin.take().unwrap().write_all(b"0 1\n2 3\n4 5\n0 1\n1 0\n").unwrap();
    let o = child.wait_with_output().unwrap();
    assert!(o.status.success(), "stdin query-batch failed: {}", stderr(&o));
    assert_eq!(stdout(&o), out, "stdin and --pairs-file must answer identically");

    let o = run(&["query", "--oracle", image.to_str().unwrap(), "--pairs", "2 3"]);
    assert!(o.status.success());
    assert_eq!(stdout(&o).trim(), lines[1], "batch must agree with single query");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_batch_malformed_and_empty_inputs() {
    let dir = tmp_dir("batch-err");
    let mesh = dir.join("t.off");
    let pois = dir.join("p.csv");
    let image = dir.join("o.seor");
    run(&["gen", "--preset", "sf-small", "--scale", "0.2", "--out", mesh.to_str().unwrap()]);
    std::fs::write(&pois, "100,100\n700,300\n").unwrap();
    let o = run(&[
        "build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        image.to_str().unwrap(),
        "--engine",
        "edge",
    ]);
    assert!(o.status.success(), "build failed: {}", stderr(&o));
    let image = image.to_str().unwrap();

    // Malformed pair line: non-zero exit, error cites file and line.
    let pairs = dir.join("bad.txt");
    std::fs::write(&pairs, "0 1\nzero one\n").unwrap();
    let o = run(&["query-batch", "--oracle", image, "--pairs-file", pairs.to_str().unwrap()]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains(":2:") && err.contains("bad site"), "error not located: {err}");

    // Wrong token count is caught too.
    std::fs::write(&pairs, "0 1 2\n").unwrap();
    let o = run(&["query-batch", "--oracle", image, "--pairs-file", pairs.to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("expected '<s> <t>'"), "{}", stderr(&o));

    // Out-of-range pair: actionable error naming the pair and the range.
    std::fs::write(&pairs, "0 99\n").unwrap();
    let o = run(&["query-batch", "--oracle", image, "--pairs-file", pairs.to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"), "{}", stderr(&o));

    // Empty input (only comments/blanks): actionable error, non-zero exit.
    std::fs::write(&pairs, "# nothing here\n\n").unwrap();
    let o = run(&["query-batch", "--oracle", image, "--pairs-file", pairs.to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("no query pairs"), "{}", stderr(&o));

    // Nonexistent pairs file.
    let o = run(&["query-batch", "--oracle", image, "--pairs-file", "/nonexistent/pairs.txt"]);
    assert!(!o.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_rejects_out_of_range_sites() {
    let dir = tmp_dir("range");
    let mesh = dir.join("t.off");
    let pois = dir.join("p.csv");
    let image = dir.join("o.seor");
    run(&["gen", "--preset", "sf-small", "--scale", "0.2", "--out", mesh.to_str().unwrap()]);
    std::fs::write(&pois, "100,100\n700,300\n").unwrap();
    let o = run(&[
        "build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        image.to_str().unwrap(),
        "--engine",
        "edge",
    ]);
    assert!(o.status.success(), "build failed: {}", stderr(&o));
    let o = run(&["query", "--oracle", image.to_str().unwrap(), "--pairs", "0 99"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poi_csv_parse_errors_are_located() {
    let dir = tmp_dir("csv");
    let mesh = dir.join("t.off");
    run(&["gen", "--preset", "sf-small", "--scale", "0.2", "--out", mesh.to_str().unwrap()]);

    // Malformed line.
    let pois = dir.join("bad.csv");
    std::fs::write(&pois, "100,100\nnot-a-number,5\n").unwrap();
    let o = run(&[
        "build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        dir.join("o.seor").to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains(":2:"), "error should cite line 2: {}", stderr(&o));

    // POI outside the footprint.
    let pois = dir.join("outside.csv");
    std::fs::write(&pois, "100,100\n-5000,-5000\n").unwrap();
    let o = run(&[
        "build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        dir.join("o.seor").to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("outside"), "{}", stderr(&o));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atlas_workflow_build_query_and_errors() {
    let dir = tmp_dir("atlas");
    let mesh = dir.join("t.off");
    let pois = dir.join("p.csv");
    let seor = dir.join("o.seor");
    let seat = dir.join("a.seat");
    run(&["gen", "--preset", "sf-small", "--scale", "0.3", "--out", mesh.to_str().unwrap()]);
    // POIs spread across the 1400 × 1110 m footprint so the 2×2 atlas has
    // sites in every tile and genuine cross-tile pairs.
    std::fs::write(&pois, "100,100\n1200,150\n150,950\n1250,1000\n700,550\n400,300\n1000,800\n")
        .unwrap();

    // atlas-build with explicit grid flags.
    let o = run(&[
        "atlas-build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        seat.to_str().unwrap(),
        "--engine",
        "edge",
        "--grid",
        "2x2",
        "--overlap",
        "0.2",
        "--portal-spacing",
        "2",
    ]);
    assert!(o.status.success(), "atlas-build failed: {}", stderr(&o));
    assert!(seat.exists());
    assert!(stderr(&o).contains("portals"), "stats line expected: {}", stderr(&o));

    // A monolithic image over the same inputs: the two CLIs must agree
    // within the documented routing bound.
    let o = run(&[
        "build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        seor.to_str().unwrap(),
        "--engine",
        "edge",
    ]);
    assert!(o.status.success(), "build failed: {}", stderr(&o));

    let pairs = dir.join("pairs.txt");
    std::fs::write(
        &pairs,
        "# all off-diagonal pairs of the first four sites\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n",
    )
    .unwrap();
    let o = run(&[
        "atlas-query",
        "--atlas",
        seat.to_str().unwrap(),
        "--pairs-file",
        pairs.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert!(o.status.success(), "atlas-query failed: {}", stderr(&o));
    let atlas_out = stdout(&o);
    assert_eq!(atlas_out.lines().count(), 6, "one line per pair:\n{atlas_out}");
    let o = run(&[
        "query-batch",
        "--oracle",
        seor.to_str().unwrap(),
        "--pairs-file",
        pairs.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "query-batch failed: {}", stderr(&o));
    for (al, ml) in atlas_out.lines().zip(stdout(&o).lines()) {
        let a: f64 = al.split_whitespace().nth(2).unwrap().parse().unwrap();
        let m: f64 = ml.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!(a > 0.0 && a <= m * 1.5 + 1e-9, "atlas {a} vs monolithic {m}");
        assert!(a >= m * 0.6 - 1e-9, "atlas {a} implausibly below monolithic {m}");
    }

    // Feeding the wrong image kind to either loader is caught cleanly.
    let o = run(&[
        "atlas-query",
        "--atlas",
        seor.to_str().unwrap(),
        "--pairs-file",
        pairs.to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("bad magic"), "{}", stderr(&o));
    let o = run(&["info", "--oracle", seat.to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("bad magic"), "{}", stderr(&o));

    // Malformed grid / out-of-range pairs.
    let o = run(&[
        "atlas-build",
        "--mesh",
        mesh.to_str().unwrap(),
        "--pois",
        pois.to_str().unwrap(),
        "--eps",
        "0.2",
        "--out",
        seat.to_str().unwrap(),
        "--grid",
        "two-by-two",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--grid"), "{}", stderr(&o));
    std::fs::write(&pairs, "0 99\n").unwrap();
    let o = run(&[
        "atlas-query",
        "--atlas",
        seat.to_str().unwrap(),
        "--pairs-file",
        pairs.to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"), "{}", stderr(&o));

    std::fs::remove_dir_all(&dir).ok();
}
