//! Integration tests comparing SE against the paper's baselines (SP-Oracle,
//! K-Algo, SE(Naive)) and exercising the A2A oracle of Appendix C.

mod common;

use common::{mesh_with_pois, mesh_with_pois_arc, refine_sites};
use std::sync::Arc;
use terrain_oracle::oracle::BuildConfig;
use terrain_oracle::prelude::*;

/// The shared baseline workload: level-4 fractal, 12 POIs.
fn setup(seed: u64) -> (Arc<TerrainMesh>, Vec<SurfacePoint>) {
    mesh_with_pois_arc(4, 0.65, seed, 12)
}

#[test]
fn all_methods_agree_within_combined_error() {
    // Every method approximates the same metric; pairwise disagreement is
    // bounded by the sum of their error budgets.
    let (mesh, pois) = setup(301);
    let eps = 0.15;
    let se =
        P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let sp = SpOracle::build(mesh.clone(), 3, usize::MAX, 2).unwrap();
    let kalgo = KAlgo::new(mesh.clone(), 3);
    for a in 0..pois.len() {
        for b in a + 1..pois.len() {
            let exact = se.engine_distance(a, b);
            let d_se = se.distance(a, b);
            let d_sp = sp.distance(&pois[a], &pois[b]);
            let d_k = kalgo.distance(&pois[a], &pois[b]);
            for (name, d) in [("SE", d_se), ("SP-Oracle", d_sp), ("K-Algo", d_k)] {
                let rel = (d - exact).abs() / exact.max(1e-12);
                assert!(rel <= 0.3, "{name} at ({a},{b}): {d} vs exact {exact}");
            }
            // The two Steiner-graph baselines share a substrate: K-Algo's
            // on-the-fly answer can never beat SP-Oracle's indexed one by
            // more than float rounding (both are graph shortest paths,
            // modulo the f32 matrix).
            assert!(
                d_k >= d_sp - 1e-4 * (1.0 + d_sp),
                "K-Algo {d_k} below SP-Oracle {d_sp} at ({a},{b})"
            );
        }
    }
}

#[test]
fn se_storage_beats_sp_oracle_storage() {
    // The headline claim: SE size ≪ SP-Oracle size (orders of magnitude at
    // the paper's scale; at test scale at least a large factor).
    let (mesh, pois) = setup(303);
    let se =
        P2POracle::build(&mesh, &pois, 0.2, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let sp = SpOracle::build(mesh.clone(), 3, usize::MAX, 2).unwrap();
    let ratio = sp.storage_bytes() as f64 / se.storage_bytes() as f64;
    assert!(ratio > 10.0, "SP-Oracle only {ratio}× larger than SE");
}

#[test]
fn sp_oracle_memory_budget_mirrors_papers_oom_runs() {
    // Figures 10/13/14 omit SP-Oracle because it exceeds the 48 GB budget;
    // our implementation must refuse in the same situation, not thrash.
    let (mesh, _) = setup(305);
    match SpOracle::build(mesh, 6, 200_000, 1) {
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("budget"), "unhelpful error: {msg}");
        }
        Ok(_) => panic!("SP-Oracle accepted a build far over budget"),
    }
}

#[test]
fn kalgo_pays_per_query_not_upfront() {
    let (mesh, pois) = setup(307);
    let kalgo = KAlgo::new(mesh.clone(), 2);
    // Setup is graph construction only — orders of magnitude below an
    // all-pairs index; and storage is the graph, not a matrix.
    let sp = SpOracle::build(mesh.clone(), 2, usize::MAX, 2).unwrap();
    assert!(kalgo.storage_bytes() < sp.storage_bytes() / 4);
    // But every query runs a full Dijkstra — same answer each time.
    let d1 = kalgo.distance(&pois[0], &pois[1]);
    let d2 = kalgo.distance(&pois[0], &pois[1]);
    assert_eq!(d1, d2);
}

#[test]
fn a2a_oracle_answers_arbitrary_points_within_band() {
    let (mesh, pois) = mesh_with_pois(4, 0.6, 309, 8);
    let (refined, _) = refine_sites(&mesh, &pois);
    let exact_engine = IchEngine::new(Arc::new(refined.mesh));

    let a2a = A2AOracle::build(Arc::new(mesh), 0.15, Some(2), &BuildConfig::default()).unwrap();
    for i in 0..pois.len() {
        for j in i + 1..pois.len() {
            let approx = a2a.distance(&pois[i], &pois[j]);
            let exact = {
                use terrain_oracle::geodesic::engine::Stop as EStop;
                exact_engine
                    .ssad(refined.poi_vertices[i], EStop::Targets(&[refined.poi_vertices[j]]))
                    .dist[refined.poi_vertices[j] as usize]
            };
            assert!(
                approx >= exact * 0.95 - 1e-9,
                "A2A far below exact at ({i},{j}): {approx} vs {exact}"
            );
            assert!(
                approx <= exact * 1.5 + 1e-9,
                "A2A too loose at ({i},{j}): {approx} vs {exact}"
            );
        }
    }
}

#[test]
fn a2a_xy_queries_cover_footprint_and_reject_outside() {
    let mesh = Arc::new(Heightfield::flat(6, 6, 1.0, 1.0).to_mesh());
    let a2a = A2AOracle::build(mesh, 0.2, Some(1), &BuildConfig::default()).unwrap();
    // Inside: close to Euclidean on the flat plane.
    let d = a2a.distance_xy((0.5, 0.5), (4.5, 4.5)).unwrap();
    let exact = (2.0 * 16.0f64).sqrt();
    assert!(d >= exact - 1e-9 && d <= exact * 1.4, "{d} vs {exact}");
    // Outside the footprint.
    assert!(a2a.distance_xy((-3.0, 0.0), (1.0, 1.0)).is_none());
    assert!(a2a.distance_xy((0.5, 0.5), (99.0, 0.5)).is_none());
}

#[test]
fn a2a_consistent_with_p2p_oracle_on_same_points() {
    // Appendix D: the A2A oracle also answers P2P queries; its answers and
    // the POI-specialized oracle's answers approximate the same distances.
    let (mesh, pois) = mesh_with_pois(3, 0.6, 311, 10);
    let eps = 0.2;
    let p2p =
        P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let a2a = A2AOracle::build(Arc::new(mesh), eps, Some(2), &BuildConfig::default()).unwrap();
    for a in 0..pois.len() {
        for b in a + 1..pois.len() {
            let d_p2p = p2p.distance(a, b);
            let d_a2a = a2a.distance(&pois[a], &pois[b]);
            let rel = (d_p2p - d_a2a).abs() / d_p2p.max(1e-12);
            assert!(rel < 0.45, "({a},{b}): P2P {d_p2p} vs A2A {d_a2a}");
        }
    }
}

#[test]
fn v2v_queries_match_across_sp_oracle_and_kalgo() {
    // Both baselines answer V2V queries from the same graph: indexed vs
    // on-the-fly must agree to f32 rounding.
    let (mesh, _) = setup(313);
    let sp = SpOracle::build(mesh.clone(), 2, usize::MAX, 1).unwrap();
    let kalgo = KAlgo::new(mesh.clone(), 2);
    for (a, b) in [(0u32, 50u32), (7, 33), (15, 60)] {
        let ds = sp.distance_vertices(a, b);
        let dk = kalgo.distance_vertices(a, b);
        assert!((ds - dk).abs() <= 1e-4 * (1.0 + dk), "({a},{b}): {ds} vs {dk}");
    }
}
