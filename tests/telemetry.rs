//! Telemetry integration suite: the observability layer's two hard
//! promises, proven end to end.
//!
//! 1. **Bit-identity** — enabling span tracing must not change a single
//!    byte of a built oracle image. Tracing reads wall clocks (the only
//!    library code allowed to), so this test is what licenses those
//!    readings: they decorate trace events and never reach oracle data.
//! 2. **Snapshot determinism** — two registries fed the same updates
//!    produce identical snapshots and identical text expositions,
//!    regardless of registration order. That is what makes registry
//!    output diffable across runs and machines.

mod common;

use common::build_p2p;
use std::collections::BTreeSet;
use terrain_oracle::oracle::telemetry::{trace, Registry};
use terrain_oracle::prelude::EngineKind;

/// The trace sink is process-wide state, so everything that toggles it
/// lives in this single test.
#[test]
fn tracing_on_or_off_builds_byte_identical_oracles() {
    assert!(!trace::is_enabled(), "trace sink must start disabled");
    let quiet = build_p2p(47, 18, 0.25, EngineKind::EdgeGraph).into_oracle().save_bytes();

    trace::enable();
    let traced = build_p2p(47, 18, 0.25, EngineKind::EdgeGraph).into_oracle().save_bytes();
    let events = trace::take_events();
    assert!(!trace::is_enabled());

    assert_eq!(quiet, traced, "tracing changed the oracle image bytes");

    // The build pipeline's phase spans were all recorded...
    let names: BTreeSet<&str> = events.iter().map(|e| e.name).collect();
    for phase in ["build", "tree", "enhanced-edges", "pair-gen"] {
        assert!(names.contains(phase), "missing build-phase span '{phase}' in {names:?}");
    }
    // ...and export to the Chrome trace-event shape `--trace` writes.
    let json = trace::export_chrome_json(&events);
    assert!(json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"));
    assert!(json.contains("\"name\":\"tree\""));
    assert!(json.contains("\"cat\":\"build\""));
    assert!(json.contains("\"ph\":\"X\""));
}

#[test]
fn registry_snapshots_are_deterministic_across_instances() {
    let feed = |reg: &Registry| {
        reg.counter("alpha_total").add(3);
        reg.gauge("depth").set(7);
        let h = reg.histogram("lat_us");
        for v in [1u64, 5, 5, 900, 70_000] {
            h.observe(v);
        }
    };
    let a = Registry::new();
    let b = Registry::new();
    feed(&a);
    feed(&b);
    assert_eq!(a.snapshot(), b.snapshot());
    assert_eq!(a.expose(), b.expose());

    // Registration order does not leak into the output: snapshots are
    // keyed by name, not by insertion history.
    let c = Registry::new();
    let h = c.histogram("lat_us");
    for v in [1u64, 5, 5, 900, 70_000] {
        h.observe(v);
    }
    c.gauge("depth").set(7);
    c.counter("alpha_total").add(3);
    assert_eq!(c.snapshot(), a.snapshot());
    assert_eq!(c.expose(), a.expose());
}
