//! Failure injection across the public API: malformed meshes, bad
//! parameters, corrupt images, empty/degenerate inputs. Every rejection
//! must be a typed error (or a documented panic), never a wrong answer.

mod common;

use common::fractal_mesh;
use std::sync::Arc;
use terrain_oracle::oracle::{BuildConfig, BuildError, SeOracle};
use terrain_oracle::prelude::*;
use terrain_oracle::terrain::io::{read_off, OffError};
use terrain_oracle::terrain::mesh::MeshError;

#[test]
fn mesh_rejects_structural_garbage() {
    use terrain_oracle::terrain::TerrainMesh;
    let v = |x: f64, y: f64, z: f64| Vec3::new(x, y, z);

    // Too few vertices / no faces.
    assert!(TerrainMesh::new(vec![], vec![]).is_err());
    assert!(TerrainMesh::new(vec![v(0., 0., 0.)], vec![]).is_err());

    // Face referencing a missing vertex.
    let r = TerrainMesh::new(vec![v(0., 0., 0.), v(1., 0., 0.), v(0., 1., 0.)], vec![[0, 1, 9]]);
    assert!(r.is_err(), "out-of-range vertex index accepted");

    // Degenerate (zero-area) face.
    let r = TerrainMesh::new(vec![v(0., 0., 0.), v(1., 0., 0.), v(2., 0., 0.)], vec![[0, 1, 2]]);
    assert!(r.is_err(), "collinear face accepted");

    // Repeated vertex in one face.
    let r = TerrainMesh::new(vec![v(0., 0., 0.), v(1., 0., 0.), v(0., 1., 0.)], vec![[0, 1, 1]]);
    assert!(r.is_err(), "duplicate vertex in face accepted");

    // Disconnected surface: two islands.
    let r = TerrainMesh::new(
        vec![
            v(0., 0., 0.),
            v(1., 0., 0.),
            v(0., 1., 0.),
            v(10., 10., 0.),
            v(11., 10., 0.),
            v(10., 11., 0.),
        ],
        vec![[0, 1, 2], [3, 4, 5]],
    );
    assert!(matches!(r, Err(MeshError::Disconnected { .. })), "disconnected mesh accepted");

    // Non-manifold edge (three faces sharing an edge).
    let r = TerrainMesh::new(
        vec![v(0., 0., 0.), v(1., 0., 0.), v(0.5, 1., 0.), v(0.5, -1., 0.), v(0.5, 0.5, 1.)],
        vec![[0, 1, 2], [1, 0, 3], [0, 1, 4]],
    );
    assert!(r.is_err(), "non-manifold edge accepted");
}

#[test]
fn off_parser_rejects_malformed_input() {
    // Not OFF at all.
    assert!(read_off("hello\n".as_bytes()).is_err());
    // Truncated counts.
    assert!(read_off("OFF\n3\n".as_bytes()).is_err());
    // Vertex line with too few coordinates.
    assert!(read_off("OFF\n3 1 0\n0 0\n1 0 0\n0 1 0\n3 0 1 2\n".as_bytes()).is_err());
    // Non-triangle face.
    let quad = "OFF\n4 1 0\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n";
    assert!(matches!(read_off(quad.as_bytes()), Err(OffError::Parse { .. })));
    // Face index out of range.
    let bad = "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 7\n";
    assert!(read_off(bad.as_bytes()).is_err());
}

#[test]
fn off_round_trip_preserves_geometry() {
    let mesh = fractal_mesh(3, 0.6, 501);
    let mut buf = Vec::new();
    terrain_oracle::terrain::io::write_off(&mesh, &mut buf).unwrap();
    let back = read_off(buf.as_slice()).unwrap();
    assert_eq!(back.n_vertices(), mesh.n_vertices());
    assert_eq!(back.n_faces(), mesh.n_faces());
    for v in 0..mesh.n_vertices() as u32 {
        assert!(back.vertex(v).dist(mesh.vertex(v)) < 1e-9);
    }
}

#[test]
fn oracle_rejects_invalid_epsilon_everywhere() {
    let mesh = Heightfield::flat(4, 4, 1.0, 1.0).to_mesh();
    let pois = sample_uniform(&mesh, 6, 3);
    for eps in [0.0, -0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let r = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default());
        assert!(r.is_err(), "ε = {eps} accepted by P2P build");
        let r = A2AOracle::build(
            Arc::new(Heightfield::flat(3, 3, 1.0, 1.0).to_mesh()),
            eps,
            Some(1),
            &BuildConfig::default(),
        );
        assert!(r.is_err(), "ε = {eps} accepted by A2A build");
    }
}

#[test]
fn empty_poi_set_rejected() {
    let mesh = Heightfield::flat(4, 4, 1.0, 1.0).to_mesh();
    let r = P2POracle::build(&mesh, &[], 0.1, EngineKind::Exact, &BuildConfig::default());
    assert!(r.is_err());
}

#[test]
fn all_colocated_pois_collapse_to_single_site() {
    // §2: duplicate POIs merge. An all-duplicates input is the extreme
    // case — one site, all distances zero.
    let mesh = Heightfield::flat(4, 4, 1.0, 1.0).to_mesh();
    let one = sample_uniform(&mesh, 1, 7)[0];
    let pois = vec![one; 5];
    let o =
        P2POracle::build(&mesh, &pois, 0.2, EngineKind::Exact, &BuildConfig::default()).unwrap();
    assert_eq!(o.n_pois(), 5);
    assert_eq!(o.n_sites(), 1);
    for a in 0..5 {
        for b in 0..5 {
            assert_eq!(o.distance(a, b), 0.0);
        }
    }
}

#[test]
fn corrupt_image_every_prefix_rejected_or_roundtrips() {
    // No prefix of a valid image may load as a *different* valid oracle.
    let mesh = fractal_mesh(3, 0.6, 503);
    let pois = sample_uniform(&mesh, 8, 11);
    let o =
        P2POracle::build(&mesh, &pois, 0.25, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let bytes = o.oracle().save_bytes();
    for cut in (0..bytes.len()).step_by(bytes.len().div_ceil(40).max(1)) {
        assert!(
            SeOracle::load_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes loaded successfully"
        );
    }
    assert!(SeOracle::load_bytes(&bytes).is_ok());
}

#[test]
fn sliver_triangles_still_produce_correct_geodesics() {
    // A long thin strip: numerically nasty (tiny inner angles) but exactly
    // planar, so ICH answers are checkable against plane geometry.
    let mesh = Heightfield::flat(30, 2, 1.0, 0.05).to_mesh();
    let ich = IchEngine::new(Arc::new(mesh.clone()));
    let a = 0u32; // (0, 0)
    let b = 29u32; // (29·1.0, 0)
    let exact = 29.0;
    let got = ich.distance(a, b);
    assert!((got - exact).abs() < 1e-6, "sliver strip: {got} vs {exact}");
}

#[test]
fn boundary_vertices_are_handled() {
    // Geodesics to/from boundary vertices and along the mesh boundary.
    let mesh = Arc::new(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh());
    let ich = IchEngine::new(mesh.clone());
    // Two corners along one boundary edge row.
    let d = ich.distance(0, 4);
    assert!((d - 4.0).abs() < 1e-9, "boundary row distance {d}");
    // Full boundary circuit corner-to-corner stays the straight diagonal
    // across the interior (shorter than walking the rim).
    let diag = ich.distance(0, 24);
    assert!((diag - 32f64.sqrt()).abs() < 1e-9);
}

#[test]
fn single_poi_oracle_works() {
    let mesh = Heightfield::flat(4, 4, 1.0, 1.0).to_mesh();
    let pois = sample_uniform(&mesh, 1, 13);
    let o =
        P2POracle::build(&mesh, &pois, 0.1, EngineKind::Exact, &BuildConfig::default()).unwrap();
    assert_eq!(o.distance(0, 0), 0.0);
}

#[test]
fn two_poi_oracle_is_tiny_and_exact() {
    // The paper's motivating example (§1.3): with two POIs a sane oracle
    // stores O(1) state, unlike Steiner-point oracles.
    let mesh = fractal_mesh(3, 0.6, 505);
    let pois = sample_uniform(&mesh, 2, 17);
    let o =
        P2POracle::build(&mesh, &pois, 0.1, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let exact = o.engine_distance(0, 1);
    assert!((o.distance(0, 1) - exact).abs() <= 0.1 * exact + 1e-9);
    assert!(o.oracle().n_pairs() <= 8, "{} pairs for two POIs", o.oracle().n_pairs());
    assert!(o.storage_bytes() < 4096, "{} bytes for two POIs", o.storage_bytes());
}

#[test]
fn build_error_messages_are_actionable() {
    let mesh = Heightfield::flat(4, 4, 1.0, 1.0).to_mesh();
    let pois = sample_uniform(&mesh, 4, 19);
    let msg = match P2POracle::build(&mesh, &pois, -1.0, EngineKind::Exact, &BuildConfig::default())
    {
        Err(e) => e.to_string(),
        Ok(_) => panic!("negative ε accepted"),
    };
    assert!(msg.contains('ε') || msg.to_lowercase().contains("epsilon"), "message: {msg}");
    let be = BuildError::InvalidEpsilon(f64::NAN);
    assert!(!be.to_string().is_empty());
}
