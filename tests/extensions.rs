//! Integration tests for the three extensions layered on the SE oracle:
//! proximity queries, dynamic POI updates and oracle persistence —
//! exercised together through the public facade, the way an application
//! would combine them.

mod common;

use common::{build_p2p as build_p2p_with_engine, fractal_mesh_arc, mesh_with_pois, tmp_dir};
use terrain_oracle::oracle::dynamic::DynamicOracle;
use terrain_oracle::oracle::BuildConfig;
use terrain_oracle::prelude::*;

fn build_p2p(seed: u64, n: usize, eps: f64) -> P2POracle {
    build_p2p_with_engine(seed, n, eps, EngineKind::Exact)
}

#[test]
fn knn_through_full_pipeline_matches_scan() {
    let oracle = build_p2p(401, 40, 0.2);
    let se = oracle.oracle();
    let idx = ProximityIndex::new(se);
    for q in (0..se.n_sites()).step_by(5) {
        let got = idx.knn(q, 5);
        let mut want: Vec<(f64, usize)> =
            (0..se.n_sites()).filter(|&s| s != q).map(|s| (se.distance(q, s), s)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (rank, nb) in got.iter().enumerate() {
            assert_eq!((nb.distance, nb.site), want[rank], "q={q} rank={rank}");
        }
    }
}

#[test]
fn knn_results_near_true_geodesic_knn() {
    // With ε = 0.05 the oracle ranking and the exact ranking can only
    // disagree where distances are within 2ε of each other; the reported
    // 1-NN's true distance is at most (1+ε)/(1−ε) times the optimum.
    let oracle = build_p2p(403, 25, 0.05);
    let se = oracle.oracle();
    let idx = ProximityIndex::new(se);
    let eps = se.epsilon();
    for q in 0..se.n_sites() {
        let reported = idx.nearest(q).unwrap();
        let exact_best = (0..se.n_sites())
            .filter(|&s| s != q)
            .map(|s| oracle.engine_distance(q_poi(&oracle, q), q_poi(&oracle, s)))
            .fold(f64::INFINITY, f64::min);
        let reported_exact =
            oracle.engine_distance(q_poi(&oracle, q), q_poi(&oracle, reported.site));
        assert!(
            reported_exact <= exact_best * (1.0 + eps) / (1.0 - eps) + 1e-9,
            "q={q}: reported true distance {reported_exact}, optimum {exact_best}"
        );
    }
}

/// Maps a site index back to a POI index (sites are deduplicated POIs; with
/// uniform sampling they are 1:1 in input order).
fn q_poi(_oracle: &P2POracle, site: usize) -> usize {
    site
}

#[test]
fn range_query_as_geofence() {
    // The GIS motivation of §1.1: "which landmarks lie within r of here".
    let oracle = build_p2p(405, 30, 0.15);
    let se = oracle.oracle();
    let idx = ProximityIndex::new(se);
    let all: Vec<f64> = (1..se.n_sites()).map(|s| se.distance(0, s)).collect();
    let median = {
        let mut v = all.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let hits = idx.range(0, median);
    assert!(!hits.is_empty());
    for nb in &hits {
        assert!(nb.distance <= median);
    }
    assert_eq!(hits.len(), all.iter().filter(|&&d| d <= median).count());
    // Sorted ascending.
    for w in hits.windows(2) {
        assert!(w[0].distance <= w[1].distance);
    }
}

#[test]
fn dynamic_oracle_full_lifecycle() {
    let (mesh, pois) = mesh_with_pois(4, 0.6, 407, 30);
    let space = common::exact_vertex_space(&mesh, &pois);
    let eps = 0.2;
    let initial: Vec<usize> = (0..20).collect();
    let mut dy =
        DynamicOracle::with_initial(&space, initial, eps, &BuildConfig::default()).unwrap();

    // Grow, shrink, rebuild — the ε bound must hold at every stage.
    use terrain_oracle::geodesic::SiteSpace;
    let check = |dy: &DynamicOracle<'_>| {
        let active = dy.active_sites();
        for &a in &active {
            for &b in &active {
                let approx = dy.distance(a, b).unwrap();
                let exact = space.distance(a, b);
                assert!(
                    (approx - exact).abs() <= eps * exact + 1e-9,
                    "({a},{b}): {approx} vs {exact}"
                );
            }
        }
    };
    for u in 20..space.n_sites() {
        dy.insert(u).unwrap();
    }
    check(&dy);
    for u in (0..10).step_by(2) {
        dy.remove(u).unwrap();
    }
    check(&dy);
    dy.rebuild().unwrap();
    check(&dy);
    assert_eq!(dy.n_active(), space.n_sites() - 5);
}

#[test]
fn persisted_oracle_round_trips_through_disk() {
    let oracle = build_p2p(409, 25, 0.15);
    let se = oracle.oracle();
    let dir = tmp_dir("persist");
    let path = dir.join("oracle.seor");

    let mut f = std::fs::File::create(&path).unwrap();
    se.save_to(&mut f).unwrap();
    drop(f);

    let mut f = std::fs::File::open(&path).unwrap();
    let loaded = terrain_oracle::oracle::SeOracle::load_from(&mut f).unwrap();
    for s in 0..se.n_sites() {
        for t in 0..se.n_sites() {
            assert_eq!(loaded.distance(s, t), se.distance(s, t));
        }
    }
    // On-disk footprint is the same order as the in-memory accounting.
    let file_len = std::fs::metadata(&path).unwrap().len() as usize;
    assert!(file_len < 4 * se.storage_bytes() + 4096, "file {file_len} bytes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn proximity_index_works_on_loaded_oracle() {
    // Persistence must preserve everything proximity search relies on
    // (tree shape, radii, pair distances).
    let oracle = build_p2p(411, 20, 0.2);
    let se = oracle.oracle();
    let loaded = terrain_oracle::oracle::SeOracle::load_bytes(&se.save_bytes()).unwrap();
    let idx_orig = ProximityIndex::new(se);
    let idx_load = ProximityIndex::new(&loaded);
    for q in 0..se.n_sites() {
        assert_eq!(idx_orig.knn(q, 4), idx_load.knn(q, 4), "q={q}");
    }
}

#[test]
fn path_reconstruction_consistent_with_oracle_distance() {
    // A hiking app: oracle for the distance estimate, Steiner path for the
    // route. The polyline length must agree with the oracle answer within
    // the combined error of both approximations.
    let mesh = fractal_mesh_arc(4, 0.6, 413);
    let eps = 0.1;
    let oracle =
        P2POracle::build_v2v(mesh.clone(), eps, EngineKind::Exact, &BuildConfig::default())
            .unwrap();
    let graph = SteinerGraph::with_points_per_edge(mesh.clone(), 3);
    for (s, t) in [(0u32, 70u32), (12, 55), (30, 8)] {
        let d_oracle = oracle.distance(s as usize, t as usize);
        let path = shortest_vertex_path(&graph, s, t).unwrap();
        // Path length ≥ exact ≥ oracle/(1+ε); path ≤ exact·graph_factor
        // with graph_factor small at m = 3.
        assert!(path.length >= d_oracle / (1.0 + eps) - 1e-9, "({s},{t})");
        assert!(
            path.length <= d_oracle * (1.0 + eps) * 1.12 + 1e-9,
            "({s},{t}): path {} vs oracle {d_oracle}",
            path.length
        );
    }
}
