//! The atlas subsystem's three contracts, exercised end to end:
//!
//! 1. **Bounded answers** — on random fractal terrains,
//!    `Atlas::distance ≤ monolithic SeOracle::distance × (1 + ε_route)`
//!    and never below the `(1 − ε)` × engine-metric geodesic floor
//!    (portal routing may detour, it must never tunnel).
//! 2. **Concurrent ≡ serial** — 8 threads hammering one shared
//!    [`AtlasHandle`] with batch + single-query traffic observe exactly
//!    the answers a single-threaded replay produces, bit for bit.
//! 3. **Served ≡ built** — a `SEAT` image round-trips byte-identically
//!    (including on a level-5, >1k-vertex fixture) and the reloaded atlas
//!    answers bit-identically through every entry point.

mod common;

use common::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use terrain_oracle::geodesic::VertexSiteSpace;
use terrain_oracle::oracle::atlas::{Atlas, AtlasConfig, AtlasHandle, EPS_ROUTE};
use terrain_oracle::oracle::oracle::{BuildConfig, SeOracle};
use terrain_oracle::oracle::serve::pair_stream;
use terrain_oracle::prelude::*;
use terrain_oracle::terrain::tile::TileGridConfig;

/// An atlas and a monolithic oracle over the same refined mesh and site
/// list (so site ids agree), plus the exact per-engine site space for
/// lower-bound checks.
fn atlas_and_mono(
    k: u32,
    seed: u64,
    n_pois: usize,
    eps: f64,
    spacing: usize,
) -> (Atlas, SeOracle, VertexSiteSpace) {
    let (mesh, pois) = mesh_with_pois(k, 0.6, seed, n_pois);
    let (refined, sites) = refine_sites(&mesh, &pois);
    let mesh = Arc::new(refined.mesh);
    let cfg = AtlasConfig {
        grid: TileGridConfig { portal_spacing: spacing, ..Default::default() },
        ..Default::default()
    };
    let atlas =
        Atlas::build_over_vertices(mesh.clone(), sites.clone(), eps, EngineKind::EdgeGraph, &cfg)
            .unwrap();
    let space = VertexSiteSpace::new(Arc::new(EdgeGraphEngine::new(mesh.clone())), sites.clone());
    let mono = SeOracle::build(&space, eps, &BuildConfig::default()).unwrap();
    let lower_space = VertexSiteSpace::new(Arc::new(EdgeGraphEngine::new(mesh)), sites);
    (atlas, mono, lower_space)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, rng_seed: 0xA71A_0001, ..ProptestConfig::default() })]

    /// Contract 1: the routed upper bound against the monolithic oracle
    /// and the geodesic lower bound against the engine metric, over
    /// random terrains and POI sets. Portal spacing 2 is the level-4
    /// analogue of the production default (see `se_oracle::atlas` docs on
    /// portal density).
    #[test]
    fn atlas_bounded_by_monolith_and_geodesic_floor(
        seed in 0u64..1000,
        n_pois in 12usize..24,
    ) {
        use terrain_oracle::geodesic::sitespace::SiteSpace;
        let eps = 0.2;
        let (atlas, mono, space) = atlas_and_mono(4, seed, n_pois, eps, 2);
        let n = atlas.n_sites();
        prop_assert_eq!(mono.n_sites(), n);
        let mut cross = 0usize;
        for s in 0..n {
            let floor = space.all_distances(s);
            for (t, &fl) in floor.iter().enumerate() {
                let a = atlas.distance(s, t);
                let m = mono.distance(s, t);
                prop_assert!(
                    a <= m * (1.0 + EPS_ROUTE) + 1e-9,
                    "seed {} sites ({}, {}): atlas {} vs monolithic {} breaches ε_route",
                    seed, s, t, a, m
                );
                prop_assert!(
                    a >= (1.0 - eps) * fl - 1e-9,
                    "seed {} sites ({}, {}): atlas {} tunnels below geodesic floor {}",
                    seed, s, t, a, fl
                );
                cross += atlas.is_cross_tile(s, t) as usize;
            }
        }
        prop_assert!(cross > 0, "fixture never exercised the portal route");
    }
}

/// One shared serving fixture for the concurrency tests: built once, then
/// only queried.
fn shared_handle() -> &'static AtlasHandle {
    static HANDLE: OnceLock<AtlasHandle> = OnceLock::new();
    HANDLE.get_or_init(|| {
        let (atlas, _, _) = atlas_and_mono(4, 977, 20, 0.2, 2);
        AtlasHandle::new(atlas)
    })
}

/// Contract 2: 8 threads, mixed batch + single-query traffic, every
/// thread's answers equal the single-threaded replay of its workload.
#[test]
fn eight_threads_observe_single_threaded_answers() {
    const THREADS: u64 = 8;
    const QUERIES: usize = 1_500;
    let h = shared_handle();
    let n = h.n_sites();
    let workload = |tid: u64| pair_stream(0xA71A_7000, tid, QUERIES, n);

    let replay: Vec<Vec<u64>> = (0..THREADS)
        .map(|tid| h.distance_many(&workload(tid)).into_iter().map(f64::to_bits).collect())
        .collect();

    let live: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|tid| {
                let worker = h.clone();
                scope.spawn(move || {
                    let pairs = workload(tid);
                    let batch = worker.distance_many(&pairs);
                    for (k, &(s, t)) in pairs.iter().enumerate().step_by(89) {
                        assert_eq!(
                            worker.distance(s as usize, t as usize).to_bits(),
                            batch[k].to_bits(),
                            "thread {tid} single query ({s},{t}) disagrees with its batch"
                        );
                    }
                    batch.into_iter().map(f64::to_bits).collect::<Vec<u64>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("serving thread panicked")).collect()
    });

    for (tid, (l, r)) in live.iter().zip(&replay).enumerate() {
        assert_eq!(l, r, "thread {tid} observed answers differing from the serial replay");
    }
}

/// The parallel batch driver equals the sequential batch for every thread
/// count, including the empty batch (which must not touch the pool).
#[test]
fn parallel_batches_equal_sequential_for_every_thread_count() {
    let h = shared_handle();
    let pairs = pair_stream(0xA71A_8000, 0, 4_000, h.n_sites());
    let seq: Vec<u64> = h.distance_many(&pairs).into_iter().map(f64::to_bits).collect();
    for threads in [0usize, 1, 2, 5] {
        let par: Vec<u64> =
            h.distance_many_par(&pairs, threads).into_iter().map(f64::to_bits).collect();
        assert_eq!(par, seq, "threads = {threads}");
        let tp = h.try_distance_many_par(&pairs, threads);
        assert!(tp.iter().zip(&seq).all(|(d, &s)| d.map(f64::to_bits) == Some(s)));
    }
    assert!(h.distance_many_par(&[], 0).is_empty());
    assert!(h.try_distance_many_par(&[], 3).is_empty());
}

/// Contract 3 on the level-5 fixture (1089 mesh vertices before
/// refinement — above the old monolithic test ceiling): byte-identical
/// image round trip, bit-identical answers through every entry point.
#[test]
fn persisted_atlas_byte_identical_level5() {
    let (mesh, pois) = mesh_with_pois(5, 0.6, 1201, 40);
    assert!(mesh.n_vertices() > 1000, "fixture must exceed the ~1k-vertex ceiling");
    let (refined, sites) = refine_sites(&mesh, &pois);
    let cfg = AtlasConfig {
        grid: TileGridConfig { portal_spacing: 4, ..Default::default() },
        ..Default::default()
    };
    let atlas = Atlas::build_over_vertices(
        Arc::new(refined.mesh),
        sites,
        0.25,
        EngineKind::EdgeGraph,
        &cfg,
    )
    .unwrap();

    let bytes = atlas.save_bytes();
    let loaded = Atlas::load_bytes(&bytes).expect("reload");
    assert_eq!(bytes, loaded.save_bytes(), "image not canonical after reload");

    let built = AtlasHandle::new(atlas);
    let served = AtlasHandle::new(loaded);
    assert_eq!(built.n_sites(), served.n_sites());
    assert_eq!(built.epsilon(), served.epsilon());
    let n = built.n_sites() as u32;
    let pairs: Vec<(u32, u32)> = (0..n).flat_map(|s| (0..n).map(move |t| (s, t))).collect();
    let want: Vec<u64> = built.distance_many(&pairs).into_iter().map(f64::to_bits).collect();
    for got in [served.distance_many(&pairs), served.distance_many_par(&pairs, 3)] {
        let got: Vec<u64> = got.into_iter().map(f64::to_bits).collect();
        assert_eq!(got, want, "served answers differ from the in-memory atlas");
    }
}
