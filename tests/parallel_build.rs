//! The parallel construction pipeline's two load-bearing guarantees:
//!
//! 1. **Determinism across thread counts** — the worker pool and the
//!    SSAD-reuse cache are pure accelerators: `threads = 1` and
//!    `threads = N` must produce byte-for-byte identical oracles (same
//!    pair set, bit-identical distances), for both construction methods
//!    and for the A2A front-end.
//! 2. **Cache transparency** — a [`CachingSiteSpace`] must answer every
//!    `SiteSpace` primitive bit-identically to the raw space it wraps, for
//!    exact (ICH), edge-graph, and Steiner-graph backends.

mod common;

use common::*;
use std::sync::Arc;
use terrain_oracle::geodesic::cache::CachingSiteSpace;
use terrain_oracle::geodesic::{GraphSiteSpace, SiteSpace, SteinerGraph};
use terrain_oracle::oracle::{BuildConfig, ConstructionMethod, SeOracle};
use terrain_oracle::prelude::*;

fn cfg(threads: usize) -> BuildConfig {
    BuildConfig { threads, ..Default::default() }
}

/// Collects the oracle's full queryable payload in a canonical order.
fn payload(o: &SeOracle) -> Vec<(u64, u64)> {
    let mut entries: Vec<(u64, u64)> = o.pair_entries().map(|(k, d)| (k, d.to_bits())).collect();
    entries.sort_unstable();
    entries
}

#[test]
fn se_oracle_identical_across_thread_counts() {
    let (mesh, pois) = mesh_with_pois(4, 0.6, 101, 22);
    let eps = 0.2;
    let one = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &cfg(1)).unwrap();
    let four = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &cfg(4)).unwrap();

    assert_eq!(one.oracle().n_pairs(), four.oracle().n_pairs());
    assert_eq!(one.oracle().height(), four.oracle().height());
    assert_eq!(payload(one.oracle()), payload(four.oracle()), "pair sets differ");
    for s in 0..one.n_pois() {
        for t in 0..one.n_pois() {
            assert_eq!(
                one.distance(s, t).to_bits(),
                four.distance(s, t).to_bits(),
                "query ({s},{t}) differs between thread counts"
            );
        }
    }
    assert_eq!(one.oracle().build_stats().workers, 1);
    assert_eq!(four.oracle().build_stats().workers, 4);
    assert!(
        four.oracle().build_stats().cache_hits > 0,
        "construction must reuse SSADs across phases"
    );
}

#[test]
fn naive_method_identical_across_thread_counts() {
    let (mesh, pois) = mesh_with_pois(3, 0.6, 103, 12);
    let base = BuildConfig { method: ConstructionMethod::Naive, ..Default::default() };
    let one = P2POracle::build(
        &mesh,
        &pois,
        0.25,
        EngineKind::Exact,
        &BuildConfig { threads: 1, ..base },
    )
    .unwrap();
    let three = P2POracle::build(
        &mesh,
        &pois,
        0.25,
        EngineKind::Exact,
        &BuildConfig { threads: 3, ..base },
    )
    .unwrap();
    assert_eq!(payload(one.oracle()), payload(three.oracle()));
}

#[test]
fn auto_threads_identical_to_serial() {
    let (mesh, pois) = mesh_with_pois(3, 0.6, 105, 10);
    let serial = P2POracle::build(&mesh, &pois, 0.2, EngineKind::Exact, &cfg(1)).unwrap();
    let auto = P2POracle::build(&mesh, &pois, 0.2, EngineKind::Exact, &cfg(0)).unwrap();
    assert_eq!(payload(serial.oracle()), payload(auto.oracle()));
    assert!(auto.oracle().build_stats().workers >= 1);
}

#[test]
fn cached_space_identical_to_raw_exact() {
    let (mesh, pois) = mesh_with_pois(3, 0.6, 107, 8);
    let raw = exact_vertex_space(&mesh, &pois);
    let cached = CachingSiteSpace::new(&raw);
    let n = raw.n_sites();
    for s in 0..n {
        // Interleave the primitives so cached entries serve later queries.
        let all_c = cached.all_distances(s);
        let all_r = raw.all_distances(s);
        assert_eq!(all_c.len(), all_r.len());
        for (i, (&c, &r)) in all_c.iter().zip(&all_r).enumerate() {
            assert_eq!(c.to_bits(), r.to_bits(), "all_distances({s})[{i}]");
        }
        let r_max = all_r.iter().cloned().fold(0.0, f64::max);
        for f in [1.0, 0.5, 0.25] {
            assert_eq!(
                cached.sites_within(s, r_max * f),
                raw.sites_within(s, r_max * f),
                "sites_within({s}, {f}·r_max)"
            );
        }
        for t in 0..n {
            assert_eq!(cached.distance(s, t).to_bits(), raw.distance(s, t).to_bits());
        }
    }
    let stats = cached.stats();
    assert!(stats.hits > 0, "interleaved queries must produce hits");
}

#[test]
fn cached_space_identical_to_raw_graph() {
    // Same transparency over the Steiner-graph space — queried narrow to
    // wide so both the reuse path and the upgrade path are exercised.
    let mesh = fractal_mesh_arc(3, 0.6, 109);
    let graph = Arc::new(SteinerGraph::with_points_per_edge(mesh.clone(), 1));
    let nv = mesh.n_vertices() as u32;
    let sites: Vec<u32> = vec![0, 3, nv / 2, nv, nv + 5, nv + 11];
    let raw = GraphSiteSpace::new(graph, sites);
    let cached = CachingSiteSpace::new(&raw);
    let n = raw.n_sites();
    for s in 0..n {
        let r_max = raw.all_distances(s).iter().cloned().fold(0.0, f64::max);
        for f in [0.2, 0.6, 1.0] {
            assert_eq!(cached.sites_within(s, r_max * f), raw.sites_within(s, r_max * f));
        }
        let all_c = cached.all_distances(s);
        let all_r = raw.all_distances(s);
        for (c, r) in all_c.iter().zip(&all_r) {
            assert_eq!(c.to_bits(), r.to_bits());
        }
    }
}

#[test]
fn a2a_identical_across_thread_counts() {
    let mesh = fractal_mesh_arc(3, 0.5, 111);
    let one = A2AOracle::build(mesh.clone(), 0.3, Some(1), &cfg(1)).unwrap();
    let four = A2AOracle::build(mesh.clone(), 0.3, Some(1), &cfg(4)).unwrap();
    assert_eq!(payload(one.oracle()), payload(four.oracle()));
    for (a, b) in [((1.2, 2.3), (6.1, 4.4)), ((0.4, 0.2), (3.3, 7.0))] {
        let da = one.distance_xy(a, b).unwrap();
        let db = four.distance_xy(a, b).unwrap();
        assert_eq!(da.to_bits(), db.to_bits(), "A2A query {a:?} → {b:?}");
    }
}

#[test]
fn try_distance_round_trips_through_persistence() {
    // The checked query respects the range of a *loaded* oracle too.
    let o = build_p2p(113, 10, 0.25, EngineKind::Exact);
    let mut buf = Vec::new();
    o.oracle().save_to(&mut buf).unwrap();
    let loaded = SeOracle::load_from(&mut buf.as_slice()).unwrap();
    let n = loaded.n_sites();
    assert_eq!(loaded.try_distance(0, n), None);
    assert_eq!(loaded.try_distance(0, n - 1), Some(loaded.distance(0, n - 1)));
}
