//! Out-of-core atlas suite: a level-6 atlas served under a resident
//! budget that forces eviction must answer **bit-identically** to a fully
//! resident load of the same image — from 8 threads at once, with
//! mid-query eviction thrash — and the tile store's counters and gauges
//! must reconcile (`loads == misses`, `resident_bytes ≤ budget`).
//!
//! Also pins the PR's size acceptance: the compressed (v2) level-6 `SEAT`
//! image is ≥ 2× smaller than v1, and serving it out-of-core stays within
//! the `(1+ε)(1+EPS_QUANT)` budget.

mod common;

use common::{mesh_with_pois, refine_sites, tmp_dir};
use std::sync::{Arc, OnceLock};
use terrain_oracle::oracle::atlas::{Atlas, AtlasConfig, AtlasHandle};
use terrain_oracle::oracle::serve::pair_stream;
use terrain_oracle::oracle::EPS_QUANT;
use terrain_oracle::prelude::*;
use terrain_oracle::terrain::tile::TileGridConfig;

const QUERIES: usize = 10_000;
const THREADS: usize = 8;

/// The level-6 fixture: a 2×2 atlas over a 65×65 fractal terrain, built
/// once, shared by every test in the file.
fn level6_atlas() -> &'static Atlas {
    static A: OnceLock<Atlas> = OnceLock::new();
    A.get_or_init(|| {
        let (mesh, pois) = mesh_with_pois(6, 0.6, 0xC6, 36);
        let (refined, sites) = refine_sites(&mesh, &pois);
        let cfg = AtlasConfig {
            grid: TileGridConfig { portal_spacing: 4, ..Default::default() },
            ..Default::default()
        };
        Atlas::build_over_vertices(Arc::new(refined.mesh), sites, 0.25, EngineKind::EdgeGraph, &cfg)
            .unwrap()
    })
}

/// Writes `bytes` to a unique file in the suite's scratch directory.
fn write_image(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = tmp_dir("out-of-core").join(format!("{tag}.seat"));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// The mixed 10k-pair workload (uniform random pairs: same-tile and
/// cross-tile queries interleaved).
fn workload(n_sites: usize) -> Vec<(u32, u32)> {
    pair_stream(0xCAB1E, 7, QUERIES, n_sites)
}

/// Total decoded bytes of the atlas's tiles, measured by opening the
/// image with an unbounded budget and touching every tile.
fn decoded_total(path: &std::path::Path) -> usize {
    let atlas = Atlas::open_out_of_core(path, usize::MAX).unwrap();
    for t in 0..atlas.n_sites() {
        // Touching every site's home tile loads every tile (each tile
        // homes at least one site).
        let _ = atlas.distance(t, t);
    }
    let stats = atlas.tile_store().unwrap().stats();
    assert_eq!(stats.resident_tiles, stats.n_tiles, "unbounded budget must keep every tile");
    stats.resident_bytes
}

#[test]
fn thrashing_out_of_core_run_is_bit_identical_across_8_threads() {
    let atlas = level6_atlas();
    let path = write_image("v1", &atlas.save_bytes());
    let pairs = workload(atlas.n_sites());
    let want: Vec<u64> = atlas.distance_many(&pairs).into_iter().map(f64::to_bits).collect();

    let total = decoded_total(&path);
    // A budget under half the decoded size (the acceptance bound) that
    // still admits the largest tile: 2/5 of the total across 4 tiles of
    // comparable size forces continuous eviction under the mixed workload.
    let budget = total * 2 / 5;
    let ooc = Atlas::open_out_of_core(&path, budget).unwrap();
    assert!(ooc.tile_store().is_some(), "out-of-core open must use the tile store");
    let handle = AtlasHandle::new(ooc);
    let got: Vec<u64> =
        handle.distance_many_par(&pairs, THREADS).into_iter().map(f64::to_bits).collect();
    assert_eq!(want, got, "out-of-core answers diverged from the resident run");

    let stats = handle.atlas().tile_store().unwrap().stats();
    assert_eq!(stats.loads, stats.misses, "every miss must trigger exactly one load");
    assert!(stats.evictions >= 1, "a sub-total budget over a mixed workload must evict");
    assert!(
        stats.resident_bytes <= budget,
        "resident {} bytes exceeds the {budget}-byte budget",
        stats.resident_bytes
    );
    assert_eq!(
        stats.evictions,
        stats.loads - stats.resident_tiles as u64,
        "every load is either resident or was evicted"
    );
    assert!(stats.hits + stats.misses > 0, "the workload must touch tiles");
}

#[test]
fn single_tile_floor_budget_still_answers_identically() {
    // Budget 0: the floor is one resident tile — maximal thrash. Answers
    // must not change, and the resident set must never exceed one tile.
    let atlas = level6_atlas();
    let path = write_image("v1-floor", &atlas.save_bytes());
    let pairs = workload(atlas.n_sites());
    let want: Vec<u64> = atlas.distance_many(&pairs).into_iter().map(f64::to_bits).collect();

    let ooc = Atlas::open_out_of_core(&path, 0).unwrap();
    let handle = AtlasHandle::new(ooc);
    let got: Vec<u64> =
        handle.distance_many_par(&pairs, THREADS).into_iter().map(f64::to_bits).collect();
    assert_eq!(want, got, "floor-budget answers diverged");

    let stats = handle.atlas().tile_store().unwrap().stats();
    assert_eq!(stats.resident_tiles, 1, "budget 0 must keep exactly the floor tile");
    assert_eq!(stats.loads, stats.misses);
    assert!(stats.evictions >= stats.n_tiles as u64, "every extra load must evict");
}

#[test]
fn gauges_and_counters_reconcile_in_the_registry() {
    let atlas = level6_atlas();
    let path = write_image("v1-metrics", &atlas.save_bytes());
    let registry = terrain_oracle::oracle::telemetry::Registry::new();
    let ooc = Atlas::open_out_of_core_with(&path, usize::MAX, registry.clone()).unwrap();
    let pairs = workload(ooc.n_sites());
    let _ = ooc.distance_many(&pairs);

    let stats = ooc.tile_store().unwrap().stats();
    let text = registry.expose();
    let metric = |name: &str| {
        terrain_oracle::oracle::telemetry::lookup(&text, name)
            .unwrap_or_else(|| panic!("{name} missing from exposition:\n{text}"))
    };
    assert_eq!(metric("atlas_tile_hits_total"), stats.hits);
    assert_eq!(metric("atlas_tile_misses_total"), stats.misses);
    assert_eq!(metric("atlas_tile_loads_total"), stats.loads);
    assert_eq!(metric("atlas_tile_evictions_total"), stats.evictions);
    assert_eq!(metric("atlas_tiles_resident"), stats.resident_tiles as u64);
    assert_eq!(metric("atlas_resident_bytes"), stats.resident_bytes as u64);
    assert_eq!(stats.loads, stats.misses);
    assert_eq!(stats.evictions, 0, "an unbounded budget never evicts");
}

#[test]
fn compressed_level6_image_halves_and_serves_out_of_core() {
    // The PR's size acceptance: the compressed level-6 SEAT image is
    // ≥ 2× smaller than v1, and an out-of-core run over it stays within
    // (1+EPS_QUANT) of the resident *uncompressed* answers — composing
    // with the oracle's (1+ε) into the documented total budget.
    let atlas = level6_atlas();
    let v1 = atlas.save_bytes();
    let v2 = atlas.save_bytes_compact(true);
    assert!(
        v1.len() >= 2 * v2.len(),
        "compressed image not ≥2× smaller: v1 = {} B, v2 = {} B",
        v1.len(),
        v2.len()
    );

    let path = write_image("v2", &v2);
    let total = decoded_total(&path);
    let ooc = Atlas::open_out_of_core(&path, total * 2 / 5).unwrap();
    let handle = AtlasHandle::new(ooc);
    let pairs = workload(atlas.n_sites());
    let want = atlas.distance_many(&pairs);
    let got = handle.distance_many_par(&pairs, THREADS);
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        assert!(
            (w - g).abs() <= EPS_QUANT * w.abs() + 1e-12,
            "pair {i}: compressed out-of-core answer {g} vs {w}"
        );
    }

    // And the compressed image out-of-core is bit-identical to the
    // compressed image fully resident (lazy decode is still decode).
    let resident = Atlas::load_bytes(&v2).unwrap();
    let resident_bits: Vec<u64> =
        resident.distance_many(&pairs).into_iter().map(f64::to_bits).collect();
    let ooc_bits: Vec<u64> = got.into_iter().map(f64::to_bits).collect();
    assert_eq!(resident_bits, ooc_bits, "lazy and eager decode of the same image diverged");
}
