//! Cross-validation of the three geodesic engines against each other and
//! against closed-form geodesics on analytically solvable surfaces.
//!
//! Invariant chain (per source/target pair):
//!
//! ```text
//! exact (ICH)  ≤  Steiner-graph distance  ≤  edge-graph distance
//! ```
//!
//! because each successive graph is a restriction of the previous path
//! family; and on a flat plane all converge to planar Euclidean distance.

mod common;

use common::fractal_mesh_arc;
use std::sync::Arc;
use terrain_oracle::prelude::*;

fn engines(mesh: &Arc<TerrainMesh>, m: usize) -> (IchEngine, SteinerEngine, EdgeGraphEngine) {
    (
        IchEngine::new(mesh.clone()),
        SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh.clone(), m)),
        EdgeGraphEngine::new(mesh.clone()),
    )
}

#[test]
fn engine_ordering_on_fractal_terrain() {
    let mesh = fractal_mesh_arc(4, 0.7, 201);
    let (ich, steiner, edge) = engines(&mesh, 3);
    let src = 7u32;
    let ri = ich.ssad(src, Stop::Exhaust);
    let rs = steiner.ssad(src, Stop::Exhaust);
    let re = edge.ssad(src, Stop::Exhaust);
    for v in 0..mesh.n_vertices() {
        assert!(
            ri.dist[v] <= rs.dist[v] + 1e-9,
            "v{v}: exact {} above steiner {}",
            ri.dist[v],
            rs.dist[v]
        );
        assert!(
            rs.dist[v] <= re.dist[v] + 1e-9,
            "v{v}: steiner {} above edge-graph {}",
            rs.dist[v],
            re.dist[v]
        );
    }
}

#[test]
fn all_engines_exact_on_flat_grid_diagonal() {
    // On a flat grid triangulated with diagonals, the edge graph is NOT
    // exact for most pairs, but ICH must be, and Steiner converges.
    let mesh = Arc::new(Heightfield::flat(7, 7, 1.0, 1.0).to_mesh());
    let ich = IchEngine::new(mesh.clone());
    let s = 0u32;
    let t = 48u32; // opposite corner, Euclidean 6√2
    let exact = 72f64.sqrt();
    assert!((ich.distance(s, t) - exact).abs() < 1e-9, "ICH not exact on plane");

    let mut last = f64::INFINITY;
    for m in [0usize, 2, 5] {
        let eng = SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh.clone(), m));
        let d = eng.distance(s, t);
        assert!(d >= exact - 1e-9);
        assert!(d <= last + 1e-12);
        last = d;
    }
    assert!(last < exact * 1.02);
}

#[test]
fn ich_matches_unfolded_tent_closed_form() {
    // Tent surface: the geodesic between symmetric points on opposite
    // slopes has a closed form by unfolding the two planes about the ridge.
    let nx = 9;
    let ridge_h = 2.0;
    let mesh = Arc::new(terrain::gen::tent(nx, 9, 1.0, 1.0, ridge_h).to_mesh());
    let ich = IchEngine::new(mesh.clone());
    // Vertices on row j=4 (middle), columns 0 and 8 (feet of both slopes).
    let row = 4u32;
    let a = row * nx as u32; // (0, 4)
    let b = row * nx as u32 + (nx as u32 - 1); // (8, 4)

    // Each slope has horizontal run 4, rise 2 → slant length √(16+4)=√20.
    // Unfolded, the two slants are collinear through the ridge (same y),
    // so the geodesic is their sum.
    let expect = 2.0 * 20f64.sqrt();
    let got = ich.distance(a, b);
    assert!((got - expect).abs() < 1e-6, "tent closed form: got {got}, expected {expect}");
}

#[test]
fn geodesic_exceeds_3d_euclidean_lower_bound() {
    let mesh = fractal_mesh_arc(4, 0.8, 203);
    let ich = IchEngine::new(mesh.clone());
    let r = ich.ssad(3, Stop::Exhaust);
    let p = mesh.vertex(3);
    for v in 0..mesh.n_vertices() {
        let chord = p.dist(mesh.vertex(v as u32));
        assert!(r.dist[v] >= chord - 1e-9, "v{v}: geodesic {} below 3-D chord {chord}", r.dist[v]);
    }
}

#[test]
fn ssad_radius_stop_agrees_with_exhaust_within_radius() {
    let mesh = fractal_mesh_arc(4, 0.6, 207);
    for (name, engine) in [
        ("ich", Box::new(IchEngine::new(mesh.clone())) as Box<dyn GeodesicEngine>),
        (
            "steiner",
            Box::new(SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh.clone(), 2))),
        ),
        ("edge", Box::new(EdgeGraphEngine::new(mesh.clone()))),
    ] {
        let full = engine.ssad(11, Stop::Exhaust);
        let reach = full.dist.iter().cloned().fold(0.0, f64::max);
        let radius = reach * 0.45;
        let partial = engine.ssad(11, Stop::Radius(radius));
        for v in 0..mesh.n_vertices() {
            if full.dist[v] <= radius {
                assert!(
                    (partial.dist[v] - full.dist[v]).abs() < 1e-9,
                    "{name} v{v}: radius-stop label {} vs final {}",
                    partial.dist[v],
                    full.dist[v]
                );
            } else if partial.dist[v].is_finite() {
                // Labels beyond the radius may be present but only as
                // valid upper bounds.
                assert!(partial.dist[v] >= full.dist[v] - 1e-9, "{name} v{v}");
            }
        }
    }
}

#[test]
fn ssad_targets_stop_finalizes_targets() {
    let mesh = fractal_mesh_arc(4, 0.6, 211);
    let targets = [1u32, 19, 37, 64, 80];
    for engine in [
        Box::new(IchEngine::new(mesh.clone())) as Box<dyn GeodesicEngine>,
        Box::new(SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh.clone(), 2))),
        Box::new(EdgeGraphEngine::new(mesh.clone())),
    ] {
        let full = engine.ssad(5, Stop::Exhaust);
        let part = engine.ssad(5, Stop::Targets(&targets));
        for &t in &targets {
            assert!(
                (part.dist[t as usize] - full.dist[t as usize]).abs() < 1e-9,
                "{}: target {t}",
                engine.name()
            );
        }
    }
}

#[test]
fn engines_are_symmetric_metrics() {
    let mesh = fractal_mesh_arc(3, 0.7, 213);
    let (ich, steiner, edge) = engines(&mesh, 2);
    let pairs = [(0u32, 40u32), (8, 72), (20, 60)];
    for engine in [&ich as &dyn GeodesicEngine, &steiner, &edge] {
        for &(a, b) in &pairs {
            let ab = engine.distance(a, b);
            let ba = engine.distance(b, a);
            assert!(
                (ab - ba).abs() <= 1e-9 * (1.0 + ab),
                "{}: d({a},{b})={ab} vs d({b},{a})={ba}",
                engine.name()
            );
        }
    }
}

#[test]
fn triangle_inequality_over_vertex_triples() {
    let mesh = fractal_mesh_arc(3, 0.7, 217);
    let ich = IchEngine::new(mesh.clone());
    let nv = mesh.n_vertices();
    let picks: Vec<u32> = (0..nv as u32).step_by(nv / 9).collect();
    let rows: Vec<Vec<f64>> = picks.iter().map(|&s| ich.ssad(s, Stop::Exhaust).dist).collect();
    for i in 0..picks.len() {
        for j in 0..picks.len() {
            for k in 0..picks.len() {
                let ab = rows[i][picks[j] as usize];
                let bc = rows[j][picks[k] as usize];
                let ac = rows[i][picks[k] as usize];
                assert!(
                    ac <= ab + bc + 1e-9,
                    "triangle violated at ({}, {}, {}): {ac} > {ab} + {bc}",
                    picks[i],
                    picks[j],
                    picks[k]
                );
            }
        }
    }
}

#[test]
fn steiner_path_length_equals_steiner_distance() {
    // The reconstructed polyline and the Dijkstra label must agree — ties
    // the path module to the engine used throughout the oracle stack.
    let mesh = fractal_mesh_arc(3, 0.7, 219);
    let g = SteinerGraph::with_points_per_edge(mesh.clone(), 2);
    let eng = SteinerEngine::new(g.clone());
    for (s, t) in [(0u32, 80u32), (4, 44), (9, 77)] {
        let d = eng.distance(s, t);
        let p = shortest_vertex_path(&g, s, t).unwrap();
        assert!((p.length - d).abs() < 1e-9, "({s},{t}): path {} vs {d}", p.length);
        assert_eq!(p.points[0], mesh.vertex(s));
        assert_eq!(*p.points.last().unwrap(), mesh.vertex(t));
    }
}

#[test]
fn within_horizon_identical_between_cached_wide_and_fresh_narrow_runs() {
    // Regression guard for window/relaxation pruning against the SSAD-reuse
    // contract: a `within(h)` view of a *wider* run must return exactly the
    // same (vertex, distance) stream as a fresh run bounded at `h` — to the
    // bit, for every engine. The cache serves narrower queries from wider
    // cached runs, so any pruning that disturbed labels inside the narrower
    // horizon would silently corrupt construction.
    let mesh = fractal_mesh_arc(4, 0.6, 223);
    for (name, engine) in [
        ("ich", Box::new(IchEngine::new(mesh.clone())) as Box<dyn GeodesicEngine>),
        (
            "steiner",
            Box::new(SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh.clone(), 2))),
        ),
        ("edge", Box::new(EdgeGraphEngine::new(mesh.clone()))),
    ] {
        let reach = engine.ssad(9, Stop::Exhaust).dist.iter().cloned().fold(0.0, f64::max);
        let wide = engine.ssad(9, Stop::Radius(reach * 0.7));
        for f in [0.7, 0.5, 0.3, 0.1] {
            let h = reach * 0.7 * f;
            let narrow = engine.ssad(9, Stop::Radius(h));
            let from_wide: Vec<(u32, u64)> =
                wide.within(h).map(|(v, d)| (v, d.to_bits())).collect();
            let fresh: Vec<(u32, u64)> = narrow.within(h).map(|(v, d)| (v, d.to_bits())).collect();
            assert_eq!(from_wide, fresh, "{name}: within({h}) differs between wide and fresh runs");
        }
    }
}

#[test]
fn cached_wide_sweep_serves_narrow_queries_bit_identically() {
    // The same contract one level up, through the cache that construction
    // actually uses: a wider cached `sites_within` must answer every
    // narrower radius exactly as a fresh horizon-limited engine run would.
    use terrain_oracle::geodesic::cache::CachingSiteSpace;
    use terrain_oracle::geodesic::{SiteSpace, VertexSiteSpace};

    let mesh = fractal_mesh_arc(4, 0.6, 227);
    let nv = mesh.n_vertices();
    let sites: Vec<u32> = (0..nv as u32).step_by(nv / 24).collect();
    let raw = VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), sites);
    let cached = CachingSiteSpace::new(&raw);

    let r_max = raw.all_distances(3).iter().cloned().fold(0.0, f64::max);
    let wide = cached.sites_within(3, r_max * 0.8); // miss: caches the wide sweep
    assert_eq!(wide, raw.sites_within(3, r_max * 0.8));
    let misses_after_wide = cached.stats().misses;
    for f in [0.6, 0.35, 0.15, 0.05] {
        let h = r_max * 0.8 * f;
        let served = cached.sites_within(3, h);
        let fresh = raw.sites_within(3, h);
        assert_eq!(served.len(), fresh.len(), "radius factor {f}");
        for ((sa, da), (sb, db)) in served.iter().zip(&fresh) {
            assert_eq!(sa, sb, "radius factor {f}");
            assert_eq!(da.to_bits(), db.to_bits(), "site {sa} at radius factor {f}");
        }
    }
    assert_eq!(cached.stats().misses, misses_after_wide, "narrow queries must all be cache hits");
}
