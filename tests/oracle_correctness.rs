//! Cross-crate integration tests: the SE oracle's end-to-end ε guarantee
//! (Theorem 1/3 of the paper) against exact geodesics, across terrains,
//! error parameters, selection strategies, construction methods and query
//! algorithms.

mod common;

use common::{fractal_mesh, fractal_mesh_arc};
use terrain_oracle::oracle::{BuildConfig, ConstructionMethod, SelectionStrategy};
use terrain_oracle::prelude::*;

/// Exhaustively checks `|d̃ − d| ≤ ε·d` over every POI pair.
fn assert_oracle_eps(oracle: &P2POracle, eps: f64, label: &str) {
    let n = oracle.n_pois();
    for a in 0..n {
        for b in a..n {
            let approx = oracle.distance(a, b);
            let exact = oracle.engine_distance(a, b);
            assert!(
                (approx - exact).abs() <= eps * exact + 1e-9,
                "{label}: POIs ({a},{b}) approx {approx} exact {exact} ε {eps}"
            );
            assert!(
                (oracle.distance(b, a) - approx).abs() < 1e-12,
                "{label}: asymmetric answer at ({a},{b})"
            );
        }
    }
}

#[test]
fn p2p_eps_guarantee_on_fractal_terrain() {
    let mesh = fractal_mesh(4, 0.7, 101);
    let pois = sample_uniform(&mesh, 30, 7);
    for eps in [0.25, 0.1] {
        let oracle =
            P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
                .unwrap();
        assert_oracle_eps(&oracle, eps, "fractal");
    }
}

#[test]
fn p2p_eps_guarantee_on_hills() {
    let mesh = gaussian_hills_mesh(103);
    let pois = sample_uniform(&mesh, 25, 11);
    let eps = 0.15;
    let oracle =
        P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default()).unwrap();
    assert_oracle_eps(&oracle, eps, "hills");
}

fn gaussian_hills_mesh(seed: u64) -> TerrainMesh {
    terrain::gen::gaussian_hills(20, 20, 1.0, 1.0, 5, 3.0, seed).to_mesh()
}

#[test]
fn p2p_eps_guarantee_on_flat_plane() {
    // Degenerate terrain: geodesic == planar Euclidean; the oracle must
    // still hold its bound (and h stays small).
    let mesh = Heightfield::flat(8, 8, 1.0, 1.0).to_mesh();
    let pois = sample_uniform(&mesh, 20, 13);
    let eps = 0.1;
    let oracle =
        P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default()).unwrap();
    assert_oracle_eps(&oracle, eps, "flat");
    assert!(oracle.oracle().height() < 30, "h = {}", oracle.oracle().height());
}

#[test]
fn clustered_pois_respect_bound() {
    // Clustered POIs stress the partition tree's covering construction
    // (many sites inside few disks).
    let mesh = fractal_mesh(4, 0.6, 107);
    let locator = terrain::locate::FaceLocator::build(&mesh);
    let pois = sample_clustered(&mesh, &locator, 24, 3, 0.08, 17);
    let eps = 0.2;
    let oracle =
        P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default()).unwrap();
    assert_oracle_eps(&oracle, eps, "clustered");
}

#[test]
fn greedy_and_random_strategies_both_hold_the_bound() {
    let mesh = fractal_mesh(4, 0.65, 109);
    let pois = sample_uniform(&mesh, 22, 19);
    let eps = 0.15;
    for strategy in [SelectionStrategy::Random, SelectionStrategy::Greedy] {
        let cfg = BuildConfig { strategy, ..Default::default() };
        let oracle = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &cfg).unwrap();
        assert_oracle_eps(&oracle, eps, &format!("{strategy:?}"));
    }
}

#[test]
fn naive_and_efficient_construction_agree_exactly() {
    // Same seed → same tree → identical pair sets; the enhanced-edge
    // shortcut must resolve every pair distance to the same value as
    // direct SSAD (Lemma 4 gives exact equality, not approximation).
    let mesh = fractal_mesh(4, 0.6, 113);
    let pois = sample_uniform(&mesh, 16, 23);
    let eps = 0.2;
    let eff =
        P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let cfg = BuildConfig { method: ConstructionMethod::Naive, ..Default::default() };
    let naive = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &cfg).unwrap();
    assert_eq!(eff.oracle().n_pairs(), naive.oracle().n_pairs());
    for a in 0..16 {
        for b in 0..16 {
            assert!(
                (eff.distance(a, b) - naive.distance(a, b)).abs() < 1e-9,
                "constructions disagree at ({a},{b})"
            );
        }
    }
    // The efficient method runs one SSAD per tree node, the naive one per
    // considered pair; on any non-trivial input the latter is larger.
    assert!(
        naive.oracle().build_stats().ssad_runs > eff.oracle().build_stats().ssad_runs,
        "naive {} vs efficient {}",
        naive.oracle().build_stats().ssad_runs,
        eff.oracle().build_stats().ssad_runs
    );
}

#[test]
fn efficient_query_equals_naive_query_everywhere() {
    let mesh = fractal_mesh(4, 0.6, 127);
    let pois = sample_uniform(&mesh, 20, 29);
    let oracle =
        P2POracle::build(&mesh, &pois, 0.15, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let se = oracle.oracle();
    for s in 0..se.n_sites() {
        for t in 0..se.n_sites() {
            let (eff, eff_stats) = se.distance_with_stats(s, t);
            let (naive, naive_stats) = se.distance_naive(s, t);
            assert_eq!(eff, naive, "({s},{t})");
            // O(h) vs O(h²): the efficient scan must never probe more.
            assert!(
                eff_stats.pairs_checked <= naive_stats.pairs_checked,
                "({s},{t}): {} > {}",
                eff_stats.pairs_checked,
                naive_stats.pairs_checked
            );
        }
    }
}

#[test]
fn v2v_mode_covers_all_vertices() {
    let mesh = fractal_mesh_arc(3, 0.6, 131);
    let eps = 0.2;
    let oracle =
        P2POracle::build_v2v(mesh.clone(), eps, EngineKind::Exact, &BuildConfig::default())
            .unwrap();
    assert_eq!(oracle.n_pois(), mesh.n_vertices());
    // Spot-check the bound over a stride of vertex pairs.
    for a in (0..mesh.n_vertices()).step_by(7) {
        for b in (a..mesh.n_vertices()).step_by(11) {
            let approx = oracle.distance(a, b);
            let exact = oracle.engine_distance(a, b);
            assert!((approx - exact).abs() <= eps * exact + 1e-9, "({a},{b})");
        }
    }
}

#[test]
fn storage_growth_dips_below_quadratic() {
    // Theorem 2's O(n·h/ε^{2β}) is asymptotic: its packing constant is
    // ≈ (1/ε)^{2β} ≈ 10⁴ at ε = 0.25, so at integration-test scale the
    // oracle may store up to all n² ordered pairs. The measurable claim
    // here is the *onset* of sub-quadratic growth — each doubling of n
    // multiplies storage by strictly less than the quadratic 4× — plus
    // the hard n² ceiling.
    let mesh = fractal_mesh(4, 0.6, 137);
    let eps = 0.25;
    let data: Vec<(usize, usize)> = [20usize, 40, 80]
        .iter()
        .map(|&n| {
            let pois = sample_uniform(&mesh, n, 31);
            let o = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
                .unwrap();
            assert!(o.oracle().n_pairs() <= n * n, "n={n}: {} pairs", o.oracle().n_pairs());
            (o.oracle().n_pairs(), o.storage_bytes())
        })
        .collect();
    let r1 = data[1].0 as f64 / data[0].0 as f64;
    let r2 = data[2].0 as f64 / data[1].0 as f64;
    assert!(r1 <= 4.0 + 1e-9, "20→40 pair growth {r1}×");
    assert!(r2 < 3.9, "40→80 pair growth {r2}× shows no sub-quadratic onset");
}

#[test]
fn height_obeys_lemma_2_spread_bound() {
    let mesh = fractal_mesh(4, 0.7, 139);
    let pois = sample_uniform(&mesh, 25, 37);
    let oracle =
        P2POracle::build(&mesh, &pois, 0.2, EngineKind::Exact, &BuildConfig::default()).unwrap();
    // h ≤ log2(max pairwise / min pairwise) + 1 (Lemma 2). Bound the
    // spread loosely via exact engine distances.
    let n = oracle.n_pois();
    let mut min_d = f64::INFINITY;
    let mut max_d = 0.0f64;
    for a in 0..n {
        for b in a + 1..n {
            let d = oracle.engine_distance(a, b);
            if d > 0.0 {
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
        }
    }
    let bound = (max_d / min_d).log2().ceil() as u32 + 1;
    assert!(
        oracle.oracle().height() <= bound + 1,
        "h = {} exceeds Lemma 2 bound {}",
        oracle.oracle().height(),
        bound
    );
}

#[test]
fn error_statistics_are_far_below_epsilon() {
    // §5.2.1: measured errors are "much smaller than the theoretical
    // bound" (paper: < ε/10 on average). Verify the mean is well under ε.
    let mesh = fractal_mesh(4, 0.65, 149);
    let pois = sample_uniform(&mesh, 25, 41);
    let eps = 0.25;
    let oracle =
        P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default()).unwrap();
    let mut sum = 0.0;
    let mut count = 0usize;
    for a in 0..25 {
        for b in a + 1..25 {
            let exact = oracle.engine_distance(a, b);
            if exact > 0.0 {
                sum += (oracle.distance(a, b) - exact).abs() / exact;
                count += 1;
            }
        }
    }
    let mean = sum / count as f64;
    assert!(mean < eps / 2.0, "mean relative error {mean} vs ε {eps}");
}
