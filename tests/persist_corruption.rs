//! Corruption suite for the persisted image decoders (`SEOR` oracle
//! images and `SEAT` atlas images): **every** single-byte flip and
//! **every** truncation of a valid image must yield a typed `Err` — never
//! a panic, and never an allocation larger than (a small multiple of) the
//! input itself.
//!
//! The allocation bound is enforced for real: a tracking global allocator
//! records the largest single allocation requested on the loading thread,
//! which is exactly the regression the hardened decoder fixed — a corrupt
//! length field used to drive `vec![0u8; len]` before any byte of the
//! declared payload was checked against reality.
//!
//! Level-4 images are covered exhaustively (every offset × several flip
//! masks; every truncation point). Level-5 images are larger, so they get
//! exhaustive coverage of the header and trailer plus a prime-strided
//! sweep of the interior — same property, sampled.
//!
//! Compact (v2) images run the same exhaustive batteries — every byte
//! flip (including flips inside quantization headers: the qtable
//! mode/scale/offset fields live in the payload, so the sweep crosses
//! them) and every truncation, under the same strict allocation bound,
//! because the frame checksum rejects any payload damage before the
//! parser runs. A second battery *repairs* the checksum after each flip
//! so the corrupt bytes actually reach the v2 varint/qtable parsers;
//! there the outcome may legitimately be `Ok` (a flipped distance is
//! still a distance) — the contract is no panic and a bounded decode
//! (v2 varint counts can amplify transiently: a node record decodes to
//! ~56 resident bytes from a few varint bytes, so this battery gets a
//! correspondingly wider 32×input+64 KiB bound).

mod common;

use common::{build_p2p, mesh_with_pois, refine_sites};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::{Arc, OnceLock};
use terrain_oracle::oracle::atlas::{Atlas, AtlasConfig};
use terrain_oracle::oracle::persist::PersistError;
use terrain_oracle::oracle::SeOracle;
use terrain_oracle::prelude::*;
use terrain_oracle::terrain::tile::TileGridConfig;

// ---------------------------------------------------------------------------
// Per-thread peak-allocation tracking.
//
// Integration tests run on many threads at once, so a process-global
// high-water mark would blame this suite for a neighbour's allocations;
// tracking per thread keeps every measurement honest. `try_with` guards
// the TLS-teardown window.
// ---------------------------------------------------------------------------

thread_local! {
    static PEAK_ALLOC: Cell<usize> = const { Cell::new(0) };
}

struct PeakTracking;

fn note(size: usize) {
    let _ = PEAK_ALLOC.try_with(|c| c.set(c.get().max(size)));
}

unsafe impl GlobalAlloc for PeakTracking {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        note(l.size());
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        note(l.size());
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        System.realloc(p, l, new_size)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static ALLOC: PeakTracking = PeakTracking;

fn reset_peak() {
    let _ = PEAK_ALLOC.try_with(|c| c.set(0));
}

fn peak() -> usize {
    PEAK_ALLOC.try_with(|c| c.get()).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Fixtures: valid images, built once per kind and level.
// ---------------------------------------------------------------------------

fn seor_level4() -> &'static Vec<u8> {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| build_p2p(101, 16, 0.25, EngineKind::EdgeGraph).into_oracle().save_bytes())
}

fn seor_level5() -> &'static Vec<u8> {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| {
        let (mesh, pois) = mesh_with_pois(5, 0.6, 102, 24);
        P2POracle::build(&mesh, &pois, 0.25, EngineKind::EdgeGraph, &BuildConfig::default())
            .unwrap()
            .into_oracle()
            .save_bytes()
    })
}

fn seat_level4() -> &'static Vec<u8> {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| build_atlas_bytes(4, 409, 24))
}

fn seat_level5() -> &'static Vec<u8> {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| build_atlas_bytes(5, 410, 28))
}

fn build_atlas(level: u32, seed: u64, n: usize) -> Atlas {
    let (mesh, pois) = mesh_with_pois(level, 0.6, seed, n);
    let (refined, sites) = refine_sites(&mesh, &pois);
    let cfg = AtlasConfig {
        grid: TileGridConfig { portal_spacing: 2, ..Default::default() },
        ..Default::default()
    };
    Atlas::build_over_vertices(Arc::new(refined.mesh), sites, 0.25, EngineKind::EdgeGraph, &cfg)
        .unwrap()
}

fn build_atlas_bytes(level: u32, seed: u64, n: usize) -> Vec<u8> {
    build_atlas(level, seed, n).save_bytes()
}

/// Compact (v2, compressed) variants of the level-4 fixtures.
fn seor_level4_v2() -> &'static Vec<u8> {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| {
        build_p2p(101, 16, 0.25, EngineKind::EdgeGraph).into_oracle().save_bytes_compact(true)
    })
}

fn seat_level4_v2() -> &'static Vec<u8> {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| build_atlas(4, 409, 24).save_bytes_compact(true))
}

// ---------------------------------------------------------------------------
// The property itself.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Kind {
    Oracle,
    Atlas,
}

/// Loads a (presumed corrupt) image and asserts the hardening contract:
/// a typed error — no panic — and no single allocation beyond a small
/// multiple of the input (geometric `read_to_end` growth can reach ~2×;
/// 4 KiB of slack covers fixed-size scratch).
fn assert_rejected_bounded(kind: Kind, bytes: &[u8], what: &str) {
    let bound = 2 * bytes.len() + 4096;
    reset_peak();
    let err = match kind {
        Kind::Oracle => SeOracle::load_bytes(bytes).err(),
        Kind::Atlas => Atlas::load_bytes(bytes).err(),
    };
    let observed = peak();
    assert!(err.is_some(), "{what}: corrupt image loaded successfully");
    assert!(
        observed <= bound,
        "{what}: allocation of {observed} bytes while rejecting a {}-byte input",
        bytes.len()
    );
}

fn exhaustive_flips(kind: Kind, image: &[u8], tag: &str) {
    let mut work = image.to_vec();
    for at in 0..image.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            work[at] ^= mask;
            assert_rejected_bounded(kind, &work, &format!("{tag}: flip {mask:#04x} at {at}"));
            work[at] ^= mask; // restore
        }
    }
    // The suite must not have corrupted its own fixture.
    assert_eq!(work, image);
}

fn exhaustive_truncations(kind: Kind, image: &[u8], tag: &str) {
    for cut in 0..image.len() {
        assert_rejected_bounded(kind, &image[..cut], &format!("{tag}: truncated to {cut}"));
    }
}

/// FNV-1a, as the frame trailer computes it — lets the fixup battery
/// repair the checksum after corrupting payload bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Loads an image whose checksum is *valid* but whose payload was
/// tampered with, asserting containment: no panic, and no allocation
/// beyond 32×input+64 KiB (wider than the reject bound because a flip
/// can legitimately parse — varint node records decode ~19× larger than
/// their wire form, so a successful or nearly-successful decode costs
/// real memory). The result itself may be `Ok` or any typed error.
fn assert_parse_contained(kind: Kind, bytes: &[u8], what: &str) {
    let bound = 32 * bytes.len() + 65536;
    reset_peak();
    match kind {
        Kind::Oracle => drop(SeOracle::load_bytes(bytes)),
        Kind::Atlas => drop(Atlas::load_bytes(bytes)),
    }
    let observed = peak();
    assert!(
        observed <= bound,
        "{what}: allocation of {observed} bytes parsing a {}-byte tampered input",
        bytes.len()
    );
}

/// Flips payload bytes and repairs the frame checksum so the corruption
/// reaches the kind-specific parser (quantization headers included —
/// qtable mode/scale/offset fields all live in the payload). Exhaustive
/// over the first `edge` payload bytes (the structural header region),
/// prime-strided through the rest.
fn checksum_fixed_flips(kind: Kind, image: &[u8], tag: &str) {
    let payload_end = image.len() - 8;
    let edge = 96.min(payload_end - 16);
    let mut offsets: Vec<usize> = (16..16 + edge).collect();
    offsets.extend((16 + edge..payload_end).step_by(31));
    let mut work = image.to_vec();
    for &at in &offsets {
        for mask in [0x01u8, 0xFF] {
            work[at] ^= mask;
            let sum = fnv1a(&work[16..payload_end]);
            work[payload_end..].copy_from_slice(&sum.to_le_bytes());
            assert_parse_contained(
                kind,
                &work,
                &format!("{tag}: fixed-up flip {mask:#04x} at {at}"),
            );
            work[at] ^= mask;
        }
    }
    work[payload_end..].copy_from_slice(&image[payload_end..]);
    assert_eq!(work, image);
}

/// Strided variant for the larger level-5 images: full coverage of the
/// 64-byte header and trailer regions (where every structural field
/// lives), a prime stride through the interior.
fn strided_flips_and_truncations(kind: Kind, image: &[u8], tag: &str) {
    let len = image.len();
    let edge = 64.min(len);
    let mut offsets: Vec<usize> = (0..edge).chain(len.saturating_sub(edge)..len).collect();
    offsets.extend((edge..len.saturating_sub(edge)).step_by(97));
    let mut work = image.to_vec();
    for &at in &offsets {
        work[at] ^= 0xFF;
        assert_rejected_bounded(kind, &work, &format!("{tag}: flip at {at}"));
        work[at] ^= 0xFF;
    }
    let mut cuts: Vec<usize> = (0..edge).collect();
    cuts.extend((edge..len).step_by(53));
    for &cut in &cuts {
        assert_rejected_bounded(kind, &image[..cut], &format!("{tag}: truncated to {cut}"));
    }
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

#[test]
fn seor_level4_loads_clean() {
    // Sanity: the fixture itself must round-trip (otherwise every
    // "rejected" assertion below would be vacuous).
    let o = SeOracle::load_bytes(seor_level4()).unwrap();
    assert!(o.n_sites() > 1);
}

#[test]
fn seat_level4_loads_clean() {
    let a = Atlas::load_bytes(seat_level4()).unwrap();
    assert!(a.n_sites() > 1);
}

#[test]
fn seor_level4_every_byte_flip_rejected() {
    exhaustive_flips(Kind::Oracle, seor_level4(), "seor-l4");
}

#[test]
fn seor_level4_every_truncation_rejected() {
    exhaustive_truncations(Kind::Oracle, seor_level4(), "seor-l4");
}

#[test]
fn seat_level4_every_byte_flip_rejected() {
    exhaustive_flips(Kind::Atlas, seat_level4(), "seat-l4");
}

#[test]
fn seat_level4_every_truncation_rejected() {
    exhaustive_truncations(Kind::Atlas, seat_level4(), "seat-l4");
}

#[test]
fn seor_v2_level4_loads_clean() {
    let o = SeOracle::load_bytes(seor_level4_v2()).unwrap();
    assert!(o.n_sites() > 1);
}

#[test]
fn seat_v2_level4_loads_clean() {
    let a = Atlas::load_bytes(seat_level4_v2()).unwrap();
    assert!(a.n_sites() > 1);
}

#[test]
fn seor_v2_level4_every_byte_flip_rejected() {
    exhaustive_flips(Kind::Oracle, seor_level4_v2(), "seor-v2-l4");
}

#[test]
fn seor_v2_level4_every_truncation_rejected() {
    exhaustive_truncations(Kind::Oracle, seor_level4_v2(), "seor-v2-l4");
}

#[test]
fn seat_v2_level4_every_byte_flip_rejected() {
    exhaustive_flips(Kind::Atlas, seat_level4_v2(), "seat-v2-l4");
}

#[test]
fn seat_v2_level4_every_truncation_rejected() {
    exhaustive_truncations(Kind::Atlas, seat_level4_v2(), "seat-v2-l4");
}

#[test]
fn seor_v2_checksum_fixed_flips_are_contained() {
    checksum_fixed_flips(Kind::Oracle, seor_level4_v2(), "seor-v2-l4");
}

#[test]
fn seat_v2_checksum_fixed_flips_are_contained() {
    checksum_fixed_flips(Kind::Atlas, seat_level4_v2(), "seat-v2-l4");
}

#[test]
fn seor_level5_strided_corruption_rejected() {
    strided_flips_and_truncations(Kind::Oracle, seor_level5(), "seor-l5");
}

#[test]
fn seat_level5_strided_corruption_rejected() {
    strided_flips_and_truncations(Kind::Atlas, seat_level5(), "seat-l5");
}

#[test]
fn inflated_length_field_is_cheap_to_reject() {
    // The original bug, replayed directly: a corrupt declared length must
    // not drive an allocation. Just under the image cap reports
    // Truncated; over it reports FrameTooLarge — both after allocating no
    // more than the real input.
    let image = seor_level4();
    for declared in [1u64 << 32, (1 << 40) - 1, 1 << 40, u64::MAX] {
        let mut bad = image.clone();
        bad[8..16].copy_from_slice(&declared.to_le_bytes());
        reset_peak();
        let err = SeOracle::load_bytes(&bad).expect_err("inflated length accepted");
        assert!(
            matches!(err, PersistError::Truncated { .. } | PersistError::FrameTooLarge { .. }),
            "unexpected error class for declared={declared}: {err:?}"
        );
        assert!(peak() <= 2 * image.len() + 4096, "declared={declared} allocated {} bytes", peak());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, rng_seed: 0x0C0_44A7, ..ProptestConfig::default() })]

    /// Randomized multi-byte corruption on top of the exhaustive
    /// single-byte sweeps: scribble 1–8 random bytes over a valid image
    /// (or truncate and scribble), which must still be rejected within
    /// the allocation bound.
    #[test]
    fn random_scribbles_rejected(
        seed in 0u64..u64::MAX,
        n_writes in 1usize..8,
        cut_ppm in 0u32..1_000_000,
    ) {
        for (kind, image) in [
            (Kind::Oracle, seor_level4()),
            (Kind::Atlas, seat_level4()),
            (Kind::Oracle, seor_level4_v2()),
            (Kind::Atlas, seat_level4_v2()),
        ] {
            let mut bad = image.clone();
            // Truncate to a pseudo-random prefix (sometimes full length).
            let keep = if cut_ppm < 500_000 {
                bad.len()
            } else {
                (bad.len() as u64 * (cut_ppm as u64) / 1_000_000) as usize
            };
            bad.truncate(keep.max(1));
            let mut x = seed | 1;
            let mut changed = keep < image.len();
            for _ in 0..n_writes {
                // splitmix-ish scramble for position and value.
                x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xB5);
                let at = (x >> 16) as usize % bad.len();
                let val = (x >> 8) as u8;
                changed |= bad[at] != val;
                bad[at] = val;
            }
            if changed {
                assert_rejected_bounded(kind, &bad, "random scribble");
            }
        }
    }
}
