//! The path workload's contracts, exercised end to end:
//!
//! 1. **EPS_PATH** — every `shortest_path` answer reuses the distance
//!    answer bit for bit, starts and ends exactly at the queried sites,
//!    and its polyline length never exceeds `distance · (1 + EPS_PATH)`;
//!    with the exact engine the two-sided contract (including the
//!    `distance / (1 + ε)` floor and the true-geodesic floor) holds at
//!    fixture levels 3, 4 and 5.
//! 2. **Detour ≡ brute force** — `pois_within_detour` returns exactly the
//!    brute-force dual sweep's answer, element for element.
//! 3. **Concurrent ≡ serial** — 8 threads mixing path and detour traffic
//!    on one shared [`QueryHandle`] (and on an [`AtlasHandle`] whose
//!    routes concatenate across portal graphs) observe bit-identical
//!    answers to a single-threaded replay.

mod common;

use common::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use terrain_oracle::oracle::atlas::{Atlas, AtlasConfig, AtlasHandle};
use terrain_oracle::oracle::route::{PathIndex, EPS_PATH};
use terrain_oracle::oracle::serve::pair_stream;
use terrain_oracle::oracle::DetourPoi;
use terrain_oracle::prelude::*;
use terrain_oracle::terrain::tile::TileGridConfig;

/// ε shared by every fixture in this file.
const FIX_EPS: f64 = 0.2;

/// Serving fixture: an edge-graph oracle with an attached path index —
/// built once, then only queried.
fn shared_handle() -> &'static QueryHandle {
    static H: OnceLock<QueryHandle> = OnceLock::new();
    H.get_or_init(|| {
        let p2p = build_p2p(307, 18, FIX_EPS, EngineKind::EdgeGraph);
        let paths = PathIndex::for_p2p(&p2p, 3);
        QueryHandle::new(p2p.into_oracle()).with_paths(paths)
    })
}

/// Atlas fixture with a path layer: portal spacing 2 keeps cross-tile
/// routes common at level 4 (see the `se_oracle::atlas` docs).
fn shared_atlas() -> &'static AtlasHandle {
    static A: OnceLock<AtlasHandle> = OnceLock::new();
    A.get_or_init(|| {
        let (mesh, pois) = mesh_with_pois(4, 0.6, 409, 24);
        let (refined, sites) = refine_sites(&mesh, &pois);
        let cfg = AtlasConfig {
            grid: TileGridConfig { portal_spacing: 2, ..Default::default() },
            path_points_per_edge: Some(3),
            ..Default::default()
        };
        let atlas = Atlas::build_over_vertices(
            Arc::new(refined.mesh),
            sites,
            FIX_EPS,
            EngineKind::EdgeGraph,
            &cfg,
        )
        .unwrap();
        AtlasHandle::new(atlas)
    })
}

/// Brute-force dual sweep: the spec `pois_within_detour` must match.
fn brute_detour(h: &QueryHandle, s: usize, t: usize, delta: f64) -> Vec<DetourPoi> {
    let budget = h.distance(s, t) + delta;
    let mut out: Vec<DetourPoi> = (0..h.n_sites())
        .filter(|&p| p != s && p != t)
        .map(|p| DetourPoi { site: p, from_s: h.distance(s, p), to_t: h.distance(p, t) })
        .filter(|d| d.via() <= budget)
        .collect();
    out.sort_by(|a, b| {
        (a.via(), a.site).partial_cmp(&(b.via(), b.site)).expect("finite distances")
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, rng_seed: 0x9A78_0001, ..ProptestConfig::default() })]

    /// Contract 1 on the serving handle (edge-graph engine, so only the
    /// upper bound is promised): distance reuse, exact endpoints, and the
    /// EPS_PATH ceiling over arbitrary in-range pairs.
    #[test]
    fn random_pairs_obey_the_path_contract(
        raw in proptest::collection::vec((0u32..1000, 0u32..1000), 1..40),
    ) {
        let h = shared_handle();
        let n = h.n_sites() as u32;
        let paths = h.paths().expect("fixture has a path index");
        for &(s, t) in &raw {
            let (s, t) = ((s % n) as usize, (t % n) as usize);
            let sp = h.shortest_path(s, t);
            prop_assert_eq!(sp.distance.to_bits(), h.distance(s, t).to_bits());
            if s == t {
                prop_assert_eq!(sp.path.length, 0.0);
                continue;
            }
            prop_assert!(
                sp.path.length <= sp.distance * (1.0 + EPS_PATH) + 1e-9,
                "({}, {}): path {} breaks EPS_PATH vs {}", s, t, sp.path.length, sp.distance
            );
            prop_assert_eq!(sp.path.points[0], paths.graph().position(paths.site_vertex(s)));
            prop_assert_eq!(
                *sp.path.points.last().expect("non-empty"),
                paths.graph().position(paths.site_vertex(t))
            );
        }
    }

    /// Contract 2 on the serving handle: random endpoints and budgets
    /// (zero, sub-diameter, and effectively unbounded).
    #[test]
    fn detour_matches_brute_force(
        s in 0usize..18,
        t in 0usize..18,
        frac in 0.0f64..2.0,
    ) {
        let h = shared_handle();
        let n = h.n_sites();
        let (s, t) = (s % n, t % n);
        let diam = (0..n).map(|p| h.distance(s, p)).fold(0.0f64, f64::max);
        for delta in [0.0, frac * diam] {
            prop_assert_eq!(h.pois_within_detour(s, t, delta), brute_detour(h, s, t, delta));
        }
    }
}

/// Contract 1, two-sided: with the exact engine the polyline can never
/// undercut either the true geodesic or the ε-deflated oracle answer, at
/// every fixture level (3, 4, 5 — the last above the ~1k-vertex ceiling).
#[test]
fn exact_engine_paths_hold_both_bounds_across_levels() {
    for (k, seed, n_pois) in [(3u32, 331u64, 10usize), (4, 337, 12), (5, 347, 10)] {
        let (mesh, pois) = mesh_with_pois(k, 0.6, seed, n_pois);
        if k == 5 {
            assert!(mesh.n_vertices() > 1000, "level-5 fixture must exceed ~1k vertices");
        }
        let p2p =
            P2POracle::build(&mesh, &pois, FIX_EPS, EngineKind::Exact, &BuildConfig::default())
                .unwrap();
        let paths = PathIndex::for_p2p(&p2p, 3);
        for a in 0..p2p.n_pois() {
            for b in a + 1..p2p.n_pois() {
                let (s, t) = (p2p.site_of_poi(a), p2p.site_of_poi(b));
                let sp = p2p.oracle().shortest_path(s, t, &paths);
                let d_geo = p2p.engine_distance(a, b);
                assert!(
                    sp.path.length >= d_geo - 1e-9,
                    "level {k} ({a},{b}): on-surface path {} below exact geodesic {d_geo}",
                    sp.path.length
                );
                assert!(
                    sp.path.length >= sp.distance / (1.0 + FIX_EPS) - 1e-9,
                    "level {k} ({a},{b}): path {} undercuts the ε floor of {}",
                    sp.path.length,
                    sp.distance
                );
                assert!(
                    sp.path.length <= sp.distance * (1.0 + EPS_PATH) + 1e-9,
                    "level {k} ({a},{b}): path {} breaks EPS_PATH vs {}",
                    sp.path.length,
                    sp.distance
                );
            }
        }
    }
}

/// Per-pair digest of a mixed path + detour query: everything a client
/// could observe, reduced to bit patterns.
type Digest = (u64, u64, usize, Vec<(usize, u64, u64)>);

fn digest_query(
    sp_distance: f64,
    sp_length: f64,
    sp_points: usize,
    detour: Vec<DetourPoi>,
) -> Digest {
    (
        sp_distance.to_bits(),
        sp_length.to_bits(),
        sp_points,
        detour.into_iter().map(|d| (d.site, d.from_s.to_bits(), d.to_t.to_bits())).collect(),
    )
}

/// Contract 3 on the serving handle: 8 threads × mixed path/detour
/// traffic, compared digest-for-digest against a serial replay.
#[test]
fn eight_threads_replay_path_traffic_bit_identically() {
    const THREADS: u64 = 8;
    const QUERIES: usize = 200;
    let h = shared_handle();
    let n = h.n_sites();
    let run = |worker: &QueryHandle, tid: u64| -> Vec<Digest> {
        pair_stream(0x9A78_0002, tid, QUERIES, n)
            .into_iter()
            .map(|(s, t)| {
                let (s, t) = (s as usize, t as usize);
                let sp = worker.shortest_path(s, t);
                let detour = worker.pois_within_detour(s, t, 0.25 * sp.distance);
                digest_query(sp.distance, sp.path.length, sp.path.points.len(), detour)
            })
            .collect()
    };

    let replay: Vec<Vec<Digest>> = (0..THREADS).map(|tid| run(h, tid)).collect();
    let live: Vec<Vec<Digest>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|tid| {
                let worker = h.clone();
                scope.spawn(move || run(&worker, tid))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("path-serving thread panicked")).collect()
    });
    for (tid, (l, r)) in live.iter().zip(&replay).enumerate() {
        assert_eq!(l, r, "thread {tid} observed path answers differing from the serial replay");
    }
}

/// Contract 1 on the atlas: path answers reuse the routed distance bit
/// for bit and keep the EPS_PATH ceiling even when the polyline is
/// concatenated from per-tile legs across the portal graph.
#[test]
fn atlas_paths_reuse_routed_distances() {
    let h = shared_atlas();
    let n = h.n_sites();
    let mut cross = 0usize;
    for s in 0..n {
        for t in 0..n {
            let sp = h.shortest_path(s, t);
            assert_eq!(sp.distance.to_bits(), h.distance(s, t).to_bits());
            if s != t {
                assert!(
                    sp.path.length <= sp.distance * (1.0 + EPS_PATH) + 1e-9,
                    "({s},{t}): atlas path {} breaks EPS_PATH vs {}",
                    sp.path.length,
                    sp.distance
                );
            }
            cross += h.atlas().is_cross_tile(s, t) as usize;
        }
    }
    assert!(cross > 0, "fixture never exercised a portal route");
}

/// Contract 3 on the atlas: portal-route concatenation stays
/// bit-deterministic under 8 concurrent threads.
#[test]
fn atlas_threads_replay_path_traffic_bit_identically() {
    const THREADS: u64 = 8;
    const QUERIES: usize = 200;
    let h = shared_atlas();
    let n = h.n_sites();
    let run = |worker: &AtlasHandle, tid: u64| -> Vec<Digest> {
        pair_stream(0x9A78_0003, tid, QUERIES, n)
            .into_iter()
            .map(|(s, t)| {
                let (s, t) = (s as usize, t as usize);
                let sp = worker.shortest_path(s, t);
                let detour = worker.pois_within_detour(s, t, 0.25 * sp.distance);
                digest_query(sp.distance, sp.path.length, sp.path.points.len(), detour)
            })
            .collect()
    };

    let replay: Vec<Vec<Digest>> = (0..THREADS).map(|tid| run(h, tid)).collect();
    let live: Vec<Vec<Digest>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|tid| {
                let worker = h.clone();
                scope.spawn(move || run(&worker, tid))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("atlas path thread panicked")).collect()
    });
    for (tid, (l, r)) in live.iter().zip(&replay).enumerate() {
        assert_eq!(l, r, "thread {tid} observed atlas answers differing from the serial replay");
    }
}
