//! The query-serving subsystem's three contracts:
//!
//! 1. **Batch ≡ sequential** — `distance_many` / `try_distance_many` (and
//!    their pool-sharded `_par` drivers) answer element-for-element
//!    bit-identically to looping over `try_distance`, for arbitrary pair
//!    slices including out-of-range and repeated ids.
//! 2. **Concurrent ≡ serial** — any number of threads hammering clones of
//!    one shared [`QueryHandle`] observe exactly the answers a
//!    single-threaded replay produces (the query path has no interior
//!    mutability to race on).
//! 3. **Served ≡ built** — an oracle that went through
//!    build → persist → load answers byte-identically to the in-memory
//!    original, on the standard level-4 fixture and on a level-5 fractal
//!    (the first fixture above the ~1k-vertex ceiling).

mod common;

use common::*;
use proptest::prelude::*;
use std::sync::OnceLock;
use terrain_oracle::oracle::{BuildConfig, SeOracle};
use terrain_oracle::prelude::*;

/// One shared serving fixture for the whole file: built once, then only
/// queried — exactly the deployment shape the subsystem exists for.
fn shared_handle() -> &'static QueryHandle {
    static HANDLE: OnceLock<QueryHandle> = OnceLock::new();
    HANDLE.get_or_init(|| {
        QueryHandle::new(build_p2p(211, 16, 0.2, EngineKind::EdgeGraph).into_oracle())
    })
}

/// Deterministic in-range pair workload for thread `tid` (no shared RNG
/// state between threads, so the serial replay regenerates it exactly).
fn thread_workload(tid: u64, len: usize, n_sites: usize) -> Vec<(u32, u32)> {
    terrain_oracle::oracle::serve::pair_stream(0x5E44_0000, tid, len, n_sites)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, rng_seed: 0x5E44_0001, ..ProptestConfig::default() })]

    /// Contract 1 for the checked API: ids are drawn well past `n_sites`,
    /// so slices mix in-range, out-of-range and repeated ids freely.
    #[test]
    fn try_batch_agrees_with_sequential_try_distance(
        pairs in proptest::collection::vec((0u32..48, 0u32..48), 0..200),
        threads in 1usize..5,
    ) {
        let h = shared_handle();
        prop_assert!(h.n_sites() < 48, "id range must reach out of range");
        let want: Vec<Option<u64>> = pairs
            .iter()
            .map(|&(s, t)| h.try_distance(s as usize, t as usize).map(f64::to_bits))
            .collect();
        for got in [h.try_distance_many(&pairs), h.try_distance_many_par(&pairs, threads)] {
            let got: Vec<Option<u64>> =
                got.into_iter().map(|d| d.map(f64::to_bits)).collect();
            prop_assert_eq!(&got, &want);
        }
    }

    /// Contract 1 for the panicking API over in-range pairs, crossing the
    /// sparse (two-slot scratch) and dense (all-layer-arrays) batch paths.
    #[test]
    fn batch_agrees_with_sequential_distance(
        raw in proptest::collection::vec((0u32..1000, 0u32..1000), 1..300),
        threads in 1usize..5,
    ) {
        let h = shared_handle();
        let n = h.n_sites() as u32;
        let pairs: Vec<(u32, u32)> = raw.iter().map(|&(s, t)| (s % n, t % n)).collect();
        let want: Vec<u64> = pairs
            .iter()
            .map(|&(s, t)| h.distance(s as usize, t as usize).to_bits())
            .collect();
        for got in [h.distance_many(&pairs), h.distance_many_par(&pairs, threads)] {
            let got: Vec<u64> = got.into_iter().map(f64::to_bits).collect();
            prop_assert_eq!(&got, &want);
        }
    }
}

/// Contract 2: 8 threads hammer one shared handle with mixed batch +
/// single-query traffic; every thread's answers equal the single-threaded
/// replay of its workload, bit for bit.
#[test]
fn eight_threads_observe_single_threaded_answers() {
    const THREADS: u64 = 8;
    const QUERIES: usize = 2_000;
    let h = shared_handle();
    let n = h.n_sites();

    let replay: Vec<Vec<u64>> = (0..THREADS)
        .map(|tid| {
            h.distance_many(&thread_workload(tid, QUERIES, n))
                .into_iter()
                .map(f64::to_bits)
                .collect()
        })
        .collect();

    let live: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|tid| {
                let worker = h.clone();
                scope.spawn(move || {
                    let pairs = thread_workload(tid, QUERIES, n);
                    // Mixed workload: the big batch plus interleaved
                    // single queries that must agree with it while the
                    // other 7 threads are mid-flight.
                    let batch = worker.distance_many(&pairs);
                    for (k, &(s, t)) in pairs.iter().enumerate().step_by(97) {
                        assert_eq!(
                            worker.distance(s as usize, t as usize).to_bits(),
                            batch[k].to_bits(),
                            "thread {tid} single query ({s},{t}) disagrees with its batch"
                        );
                    }
                    batch.into_iter().map(f64::to_bits).collect::<Vec<u64>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("serving thread panicked")).collect()
    });

    for (tid, (l, r)) in live.iter().zip(&replay).enumerate() {
        assert_eq!(l, r, "thread {tid} observed answers differing from the serial replay");
    }
}

/// Contract 3 shared body: persist, reload, and compare every answer (and
/// the image itself) bit for bit, through both the sequential and the
/// parallel batch drivers.
fn assert_served_equals_built(oracle: SeOracle) {
    let bytes = oracle.save_bytes();
    let loaded = SeOracle::load_bytes(&bytes).expect("reload");
    let built = QueryHandle::new(oracle);
    let served = QueryHandle::new(loaded);

    assert_eq!(built.n_sites(), served.n_sites());
    assert_eq!(built.epsilon(), served.epsilon());
    let n = built.n_sites() as u32;
    let pairs: Vec<(u32, u32)> = (0..n).flat_map(|s| (0..n).map(move |t| (s, t))).collect();
    let want: Vec<u64> = built.distance_many(&pairs).into_iter().map(f64::to_bits).collect();
    for got in [served.distance_many(&pairs), served.distance_many_par(&pairs, 3)] {
        let got: Vec<u64> = got.into_iter().map(f64::to_bits).collect();
        assert_eq!(got, want, "served answers differ from the in-memory oracle");
    }
    // The image is canonical: re-serializing the served oracle reproduces
    // the bytes the built one wrote.
    assert_eq!(bytes, served.oracle().save_bytes(), "image not canonical after reload");
}

#[test]
fn persisted_handle_byte_identical_level4() {
    assert_served_equals_built(build_p2p(401, 20, 0.2, EngineKind::EdgeGraph).into_oracle());
}

#[test]
fn persisted_handle_byte_identical_level5() {
    // Level-5 fractal: 33 × 33 = 1089 vertices before refinement — the
    // first fixture above the ~1k-vertex ceiling every earlier suite
    // stayed under.
    let (mesh, pois) = mesh_with_pois(5, 0.6, 503, 40);
    assert!(mesh.n_vertices() > 1000, "fixture must exceed the ~1k-vertex ceiling");
    let oracle =
        P2POracle::build(&mesh, &pois, 0.25, EngineKind::EdgeGraph, &BuildConfig::default())
            .unwrap();
    assert_served_equals_built(oracle.into_oracle());
}
