//! Error-budget suite for the compact (v2) image encoding: quantization
//! must stay inside its declared per-table bound, whole-oracle answers
//! must stay within `(1+ε)(1+EPS_QUANT)` of the truth, the encoder must
//! be canonical (encode→decode→encode is byte-identical), and turning
//! compression *off* must preserve exact bit-identity.
//!
//! The per-value properties run on adversarial random tables (mixed
//! magnitudes, zeros, subnormal-adjacent values); the whole-image
//! properties run on real oracles and atlases over random fractal meshes.

mod common;

use common::{build_p2p, mesh_with_pois, refine_sites};
use proptest::prelude::*;
use std::sync::Arc;
use terrain_oracle::oracle::atlas::{Atlas, AtlasConfig};
use terrain_oracle::oracle::quant::{
    decode_error_bound, decode_values, encode_values, table_scale,
};
use terrain_oracle::oracle::{SeOracle, EPS_QUANT};
use terrain_oracle::prelude::*;
use terrain_oracle::terrain::tile::TileGridConfig;

// ---------------------------------------------------------------------------
// Table-level properties: the quantizer against its declared bound.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, rng_seed: 0xC0DEC, ..ProptestConfig::default() })]

    /// Every decoded value is within the table's declared absolute bound
    /// (`scale/2`) of the original, and within `EPS_QUANT` relative error
    /// — the bound the whole-oracle guarantee is built from.
    #[test]
    fn quantized_tables_stay_inside_declared_bound(
        values in proptest::collection::vec((0u8..5, 0.0f64..1.0), 0..128).prop_map(|raw| {
            // Mixed magnitudes per element: exact zeros, micro-scale,
            // unit-scale, kilo-scale, and astronomical values.
            raw.into_iter()
                .map(|(kind, m)| match kind {
                    0 => 0.0,
                    1 => 1e-12 + m * 1e-6,
                    2 => 0.001 + m,
                    3 => 1.0 + m * 1e6,
                    _ => 1e6 + m * 1e18,
                })
                .collect::<Vec<f64>>()
        })
    ) {
        let bytes = encode_values(&values, true);
        let decoded = decode_values(&bytes, values.len()).expect("own encoding must decode");
        match table_scale(&bytes) {
            Some(scale) => {
                let bound = decode_error_bound(scale);
                for (o, d) in values.iter().zip(&decoded) {
                    prop_assert!((o - d).abs() <= bound,
                        "abs error {} > declared bound {bound}", (o - d).abs());
                    if *o != 0.0 {
                        prop_assert!((o - d).abs() <= EPS_QUANT * o,
                            "relative error {} > EPS_QUANT", (o - d).abs() / o);
                    } else {
                        prop_assert_eq!(*d, 0.0, "zero must survive exactly");
                    }
                }
            }
            // Raw fallback (extreme dynamic range): exact by definition.
            None => prop_assert_eq!(&values, &decoded),
        }
    }

    /// Canonical encoder: re-encoding the decode is byte-identical. (The
    /// quantization grid is a fixed point — decoded values re-quantize to
    /// themselves, so images never drift across save/load cycles.)
    #[test]
    fn reencoding_decoded_tables_is_byte_identical(
        values in proptest::collection::vec(0.0f64..1e9, 0..96)
    ) {
        let bytes = encode_values(&values, true);
        let decoded = decode_values(&bytes, values.len()).expect("own encoding must decode");
        let again = encode_values(&decoded, true);
        prop_assert_eq!(&bytes, &again, "encode(decode(encode(v))) != encode(v)");
    }

    /// Compression off is the identity: every value survives bit-exactly.
    #[test]
    fn uncompressed_tables_are_exact(
        values in proptest::collection::vec(0.0f64..1e12, 0..96)
    ) {
        let bytes = encode_values(&values, false);
        let decoded = decode_values(&bytes, values.len()).expect("own encoding must decode");
        for (o, d) in values.iter().zip(&decoded) {
            prop_assert_eq!(o.to_bits(), d.to_bits());
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-image properties: real oracles and atlases.
// ---------------------------------------------------------------------------

/// Asserts `got` is within `(1 + EPS_QUANT)` of `want`, element-wise, with
/// a femto-scale absolute floor for answers near zero.
fn assert_within_quant(want: f64, got: f64, what: &str) {
    assert!(
        (want - got).abs() <= EPS_QUANT * want.abs() + 1e-12,
        "{what}: {got} vs {want} (relative error {})",
        (want - got).abs() / want.abs().max(1e-300)
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, rng_seed: 0x5E01336, max_shrink_iters: 0
    })]

    /// For random meshes and POI sets: the compressed image answers every
    /// pair within `(1+EPS_QUANT)` of the uncompressed oracle — which is
    /// itself within `(1+ε)` of the truth, composing to the documented
    /// `(1+ε)(1+EPS_QUANT)` whole-oracle budget — and the compact encoder
    /// is canonical at image level.
    #[test]
    fn compressed_oracle_answers_within_quant_budget(
        seed in 0u64..1 << 48,
        n in 10usize..18,
    ) {
        let built = build_p2p(seed | 1, n, 0.25, EngineKind::EdgeGraph).into_oracle();
        let image = built.save_bytes_compact(true);
        let packed = SeOracle::load_bytes(&image).expect("compact image must load");

        for s in 0..built.n_sites() {
            for t in 0..built.n_sites() {
                let want = built.distance(s, t);
                let got = packed.distance(s, t);
                assert_within_quant(want, got, &format!("pair ({s}, {t})"));
            }
        }
        // Canonical: decode→re-encode reproduces the image byte for byte.
        prop_assert_eq!(&image, &packed.save_bytes_compact(true));

        // Compression off: v2 framing, exact tables — bit-identity.
        let raw = built.save_bytes_compact(false);
        let exact = SeOracle::load_bytes(&raw).expect("raw compact image must load");
        for s in 0..built.n_sites() {
            for t in 0..built.n_sites() {
                prop_assert_eq!(
                    built.distance(s, t).to_bits(),
                    exact.distance(s, t).to_bits()
                );
            }
        }
        prop_assert_eq!(&raw, &exact.save_bytes_compact(false));
    }
}

#[test]
fn compressed_atlas_answers_within_quant_budget() {
    let (mesh, pois) = mesh_with_pois(4, 0.6, 0xA7145, 22);
    let (refined, sites) = refine_sites(&mesh, &pois);
    let cfg = AtlasConfig {
        grid: TileGridConfig { portal_spacing: 2, ..Default::default() },
        ..Default::default()
    };
    let atlas = Atlas::build_over_vertices(
        Arc::new(refined.mesh),
        sites,
        0.25,
        EngineKind::EdgeGraph,
        &cfg,
    )
    .unwrap();

    let v1 = atlas.save_bytes();
    let image = atlas.save_bytes_compact(true);
    assert!(
        image.len() < v1.len(),
        "compressed image ({} B) not smaller than v1 ({} B)",
        image.len(),
        v1.len()
    );
    let packed = Atlas::load_bytes(&image).expect("compact atlas must load");
    let n = atlas.n_sites() as u32;
    for s in 0..n {
        for t in 0..n {
            let want = atlas.distance(s as usize, t as usize);
            let got = packed.distance(s as usize, t as usize);
            assert_within_quant(want, got, &format!("atlas pair ({s}, {t})"));
        }
    }
    assert_eq!(image, packed.save_bytes_compact(true), "atlas compact encoder not canonical");

    // Compression off: answers bit-identical to the original atlas.
    let raw = atlas.save_bytes_compact(false);
    let exact = Atlas::load_bytes(&raw).expect("raw compact atlas must load");
    for s in 0..n {
        for t in 0..n {
            assert_eq!(
                atlas.distance(s as usize, t as usize).to_bits(),
                exact.distance(s as usize, t as usize).to_bits(),
                "raw v2 atlas answer differs at ({s}, {t})"
            );
        }
    }
    assert_eq!(raw, exact.save_bytes_compact(false));
}
