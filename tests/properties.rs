//! Property-based integration tests (proptest): randomized terrains, POI
//! sets and parameters, checking the invariants the paper's lemmas and
//! theorems promise.

mod common;

use common::{fractal_mesh_arc, mesh_with_pois};
use proptest::prelude::*;
use std::sync::Arc;
use terrain_oracle::oracle::{BuildConfig, SeOracle};
use terrain_oracle::prelude::*;

/// The level-3 fractal every property in this file randomizes over.
fn fractal_mesh(seed: u64, rough: f64) -> Arc<TerrainMesh> {
    fractal_mesh_arc(3, rough, seed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, rng_seed: 0x7E44_0001, ..ProptestConfig::default() })]

    /// Theorem 1 end-to-end: for random terrain, POIs and ε, every pair's
    /// oracle answer is within ε of the exact geodesic distance — and the
    /// query machinery never fails to find a matching node pair
    /// (the unique-pair-match property, or the query would panic).
    #[test]
    fn oracle_eps_bound_randomized(
        seed in 0u64..1000,
        eps in 0.05f64..0.5,
        n in 5usize..20,
        rough in 0.4f64..0.9,
    ) {
        let (mesh, pois) = mesh_with_pois(3, rough, seed, n);
        let oracle = P2POracle::build(
            &mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default(),
        ).unwrap();
        for a in 0..n {
            for b in a..n {
                let approx = oracle.distance(a, b);
                let exact = oracle.engine_distance(a, b);
                prop_assert!(
                    (approx - exact).abs() <= eps * exact + 1e-9,
                    "({a},{b}): {approx} vs {exact} at eps {eps}"
                );
            }
        }
    }

    /// Geodesic metric axioms (ICH): identity, symmetry, triangle
    /// inequality, and the 3-D chord lower bound.
    #[test]
    fn exact_geodesic_is_a_metric(seed in 0u64..1000, rough in 0.3f64..1.0) {
        let mesh = fractal_mesh(seed, rough);
        let ich = IchEngine::new(mesh.clone());
        let nv = mesh.n_vertices();
        let picks: Vec<u32> = vec![0, (nv / 3) as u32, (2 * nv / 3) as u32, (nv - 1) as u32];
        let rows: Vec<Vec<f64>> =
            picks.iter().map(|&s| ich.ssad(s, Stop::Exhaust).dist).collect();
        for (i, &a) in picks.iter().enumerate() {
            prop_assert_eq!(rows[i][a as usize], 0.0);
            for (j, &b) in picks.iter().enumerate() {
                // Symmetry.
                prop_assert!((rows[i][b as usize] - rows[j][a as usize]).abs() < 1e-6);
                // Chord lower bound.
                let chord = mesh.vertex(a).dist(mesh.vertex(b));
                prop_assert!(rows[i][b as usize] >= chord - 1e-9);
                // Triangle through every third pick.
                for (k, _) in picks.iter().enumerate() {
                    prop_assert!(
                        rows[i][picks[k] as usize]
                            <= rows[i][b as usize] + rows[j][picks[k] as usize] + 1e-9
                    );
                }
            }
        }
    }

    /// Engine ordering: exact ≤ Steiner(m) ≤ Steiner(0) == edge graph.
    #[test]
    fn engine_ordering_randomized(seed in 0u64..1000, m in 1usize..4) {
        let mesh = fractal_mesh(seed, 0.6);
        let ich = IchEngine::new(mesh.clone());
        let fine = SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh.clone(), m));
        let coarse = EdgeGraphEngine::new(mesh.clone());
        let src = (seed % mesh.n_vertices() as u64) as u32;
        let ri = ich.ssad(src, Stop::Exhaust);
        let rf = fine.ssad(src, Stop::Exhaust);
        let rc = coarse.ssad(src, Stop::Exhaust);
        for v in 0..mesh.n_vertices() {
            prop_assert!(ri.dist[v] <= rf.dist[v] + 1e-9, "v{v}");
            prop_assert!(rf.dist[v] <= rc.dist[v] + 1e-9, "v{v}");
        }
    }

    /// Compressed-tree structural invariants (Lemma 9 + layer bookkeeping)
    /// hold for every built oracle.
    #[test]
    fn compressed_tree_invariants(seed in 0u64..1000, n in 4usize..24) {
        let (mesh, pois) = mesh_with_pois(3, 0.6, seed, n);
        let oracle = P2POracle::build(
            &mesh, &pois, 0.2, EngineKind::EdgeGraph, &BuildConfig::default(),
        ).unwrap();
        let t = oracle.oracle().tree();
        let n_sites = oracle.n_sites();
        // Lemma 9: at most 2n − 1 nodes.
        prop_assert!(t.n_nodes() < 2 * n_sites);
        let mut leaves = 0usize;
        for (id, node) in t.nodes.iter().enumerate() {
            if node.children.is_empty() {
                leaves += 1;
                prop_assert_eq!(node.radius, 0.0, "leaf {} with non-zero radius", id);
            } else {
                // Radius halves per layer from r0.
                let expect = t.r0 / (1u64 << node.layer) as f64;
                prop_assert!((node.radius - expect).abs() < 1e-9 * (1.0 + expect));
                if id as u32 != t.root {
                    prop_assert!(node.children.len() >= 2, "internal chain survived");
                }
            }
            if id as u32 != t.root {
                let p = node.parent as usize;
                prop_assert!(t.nodes[p].layer < node.layer);
            }
        }
        prop_assert_eq!(leaves, n_sites);
    }

    /// Persistence: any built oracle round-trips bit-exactly w.r.t. its
    /// query answers.
    #[test]
    fn persistence_roundtrip_randomized(seed in 0u64..1000, n in 4usize..16) {
        let (mesh, pois) = mesh_with_pois(3, 0.6, seed, n);
        let oracle = P2POracle::build(
            &mesh, &pois, 0.25, EngineKind::EdgeGraph, &BuildConfig::default(),
        ).unwrap();
        let se = oracle.oracle();
        let loaded = SeOracle::load_bytes(&se.save_bytes()).unwrap();
        for s in 0..se.n_sites() {
            for t in 0..se.n_sites() {
                prop_assert_eq!(loaded.distance(s, t), se.distance(s, t));
            }
        }
    }

    /// kNN over the tree equals the brute-force scan for every query site
    /// (the branch-and-bound bounds are conservative).
    #[test]
    fn knn_equals_scan_randomized(seed in 0u64..1000, n in 6usize..20, k in 1usize..6) {
        let (mesh, pois) = mesh_with_pois(3, 0.6, seed, n);
        let oracle = P2POracle::build(
            &mesh, &pois, 0.2, EngineKind::EdgeGraph, &BuildConfig::default(),
        ).unwrap();
        let se = oracle.oracle();
        let idx = ProximityIndex::new(se);
        for q in 0..se.n_sites() {
            let got = idx.knn(q, k);
            let mut want: Vec<(f64, usize)> = (0..se.n_sites())
                .filter(|&s| s != q)
                .map(|s| (se.distance(q, s), s))
                .collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.truncate(k);
            let got_pairs: Vec<(f64, usize)> =
                got.iter().map(|nb| (nb.distance, nb.site)).collect();
            prop_assert_eq!(got_pairs, want, "q={}", q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, rng_seed: 0x7E44_0002, ..ProptestConfig::default() })]

    /// Dynamic oracle under a random operation sequence: whatever the
    /// churn, every active-pair answer stays within ε of the true
    /// distance, and a rebuild never changes which sites are active.
    #[test]
    fn dynamic_oracle_random_ops(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0u8..3, 0usize..24), 1..24),
    ) {
        use terrain_oracle::geodesic::SiteSpace;
        use terrain_oracle::oracle::dynamic::DynamicOracle;

        let (mesh, pois) = mesh_with_pois(3, 0.6, seed, 24);
        let space = common::edge_graph_vertex_space(&mesh, &pois);
        let eps = 0.25;
        let initial: Vec<usize> = (0..space.n_sites() / 2).collect();
        let mut dy =
            DynamicOracle::with_initial(&space, initial, eps, &BuildConfig::default()).unwrap();

        for (op, raw) in ops {
            let u = raw % space.n_sites();
            match op {
                0 => {
                    let _ = dy.insert(u); // AlreadyActive is fine
                }
                1 => {
                    let _ = dy.remove(u); // NotActive is fine
                }
                _ => {
                    if dy.should_rebuild() && dy.n_active() > 0 {
                        dy.rebuild().unwrap();
                    }
                }
            }
            let active = dy.active_sites();
            prop_assert_eq!(active.len(), dy.n_active());
            for (i, &a) in active.iter().enumerate() {
                // Spot-check a diagonal stripe rather than all pairs.
                let b = active[(i * 7 + 1) % active.len()];
                let approx = dy.distance(a, b).expect("both active");
                let exact = space.distance(a, b);
                prop_assert!(
                    (approx - exact).abs() <= eps * exact + 1e-9,
                    "({}, {}): {} vs {}", a, b, approx, exact
                );
            }
        }
    }

    /// Decimation on random fractals: the result is a valid mesh (the
    /// constructor re-validates), keeps the disk Euler characteristic and
    /// the exact footprint, and reaches the target.
    #[test]
    fn decimation_randomized(seed in 0u64..1000, frac in 0.4f64..0.9) {
        use terrain_oracle::terrain::simplify::decimate_to;
        let m = common::fractal_mesh(4, 0.6, seed);
        let target = ((m.n_vertices() as f64 * frac) as usize).max(8);
        match decimate_to(&m, target) {
            Ok(d) => {
                prop_assert!(d.n_vertices() <= target);
                prop_assert_eq!(
                    d.n_vertices() as i64 - d.n_edges() as i64 + d.n_faces() as i64,
                    1
                );
                let (sa, sb) = (m.stats(), d.stats());
                prop_assert!((sa.bbox.0.x - sb.bbox.0.x).abs() < 1e-9);
                prop_assert!((sa.bbox.1.y - sb.bbox.1.y).abs() < 1e-9);
            }
            Err(terrain_oracle::terrain::simplify::DecimateError::Stuck { reached }) => {
                // Legitimate when interior edges run out first.
                prop_assert!(reached > target);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// ESRI grid round-trips preserve every height, including after NODATA
    /// hole-filling made the grid complete.
    #[test]
    fn dem_roundtrip_randomized(
        seed in 0u64..1000,
        nx in 3usize..9,
        ny in 3usize..9,
        holes in proptest::collection::vec((0usize..100, 0usize..100), 0..5),
    ) {
        use terrain_oracle::terrain::dem::{read_asc, write_asc};
        use terrain_oracle::terrain::gen::Heightfield;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut hf = Heightfield::flat(nx, ny, 2.0, 2.0);
        for j in 0..ny {
            for i in 0..nx {
                hf.set(i, j, rng.random_range(-50.0..50.0));
            }
        }
        // Round-trip of a complete grid is exact.
        let mut buf = Vec::new();
        write_asc(&hf, &mut buf).unwrap();
        let back = read_asc(buf.as_slice()).unwrap();
        for j in 0..ny {
            for i in 0..nx {
                prop_assert!((back.h(i, j) - hf.h(i, j)).abs() < 1e-9);
            }
        }
        // Punch NODATA holes (never all cells): the parse must fill them
        // with finite values and keep untouched cells exact.
        let mut text = format!("ncols {nx}\nnrows {ny}\ncellsize 2\nNODATA_value -9999\n");
        let mut holed = vec![vec![false; nx]; ny];
        for &(a, b) in &holes {
            let (i, j) = (a % nx, b % ny);
            if !(i == 0 && j == 0) {
                holed[j][i] = true;
            }
        }
        for j in (0..ny).rev() {
            let row: Vec<String> = (0..nx)
                .map(|i| if holed[j][i] { "-9999".into() } else { format!("{}", hf.h(i, j)) })
                .collect();
            text.push_str(&row.join(" "));
            text.push('\n');
        }
        let filled = read_asc(text.as_bytes()).unwrap();
        for (j, hrow) in holed.iter().enumerate() {
            for (i, &hole) in hrow.iter().enumerate() {
                prop_assert!(filled.h(i, j).is_finite());
                if !hole {
                    prop_assert!((filled.h(i, j) - hf.h(i, j)).abs() < 1e-9);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, rng_seed: 0x7E44_0003, ..ProptestConfig::default() })]

    /// On a flat grid the exact geodesic equals planar Euclidean distance
    /// for every vertex pair (ICH correctness on the degenerate case).
    #[test]
    fn flat_terrain_geodesic_is_euclidean(
        nx in 3usize..7,
        ny in 3usize..7,
        s_pick in 0usize..100,
        t_pick in 0usize..100,
    ) {
        let mesh = Arc::new(Heightfield::flat(nx, ny, 1.0, 1.0).to_mesh());
        let ich = IchEngine::new(mesh.clone());
        let nv = mesh.n_vertices();
        let s = (s_pick % nv) as u32;
        let t = (t_pick % nv) as u32;
        let exact = mesh.vertex(s).dist(mesh.vertex(t));
        let got = ich.distance(s, t);
        prop_assert!((got - exact).abs() < 1e-9, "({s},{t}): {got} vs {exact}");
    }

    /// SurfacePath invariants: length additivity, interpolation clamping,
    /// simplification never lengthens.
    #[test]
    fn surface_path_properties(
        pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, -2.0f64..2.0), 1..12),
        t in 0.0f64..20.0,
    ) {
        let points: Vec<Vec3> = pts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let path = SurfacePath::from_points(points.clone());
        let manual: f64 = points.windows(2).map(|w| w[0].dist(w[1])).sum();
        prop_assert!((path.length - manual).abs() < 1e-9);
        // point_at stays on the polyline's bounding box.
        let p = path.point_at(t);
        let (mut lo, mut hi) = (points[0], points[0]);
        for q in &points {
            lo = Vec3::new(lo.x.min(q.x), lo.y.min(q.y), lo.z.min(q.z));
            hi = Vec3::new(hi.x.max(q.x), hi.y.max(q.y), hi.z.max(q.z));
        }
        prop_assert!(p.x >= lo.x - 1e-9 && p.x <= hi.x + 1e-9);
        prop_assert!(p.y >= lo.y - 1e-9 && p.y <= hi.y + 1e-9);
        // Simplification preserves endpoints and never lengthens by more
        // than the tolerance times the point count.
        let s = path.simplify_collinear(1e-9);
        prop_assert_eq!(s.points[0], path.points[0]);
        prop_assert_eq!(*s.points.last().unwrap(), *path.points.last().unwrap());
        prop_assert!(s.length <= path.length + 1e-6);
    }
}
