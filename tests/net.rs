//! Socket integration suite for the `oracled` serving stack: a real
//! `OracleServer` on an ephemeral port, driven by real TCP clients.
//!
//! Covers the serving contract end to end: happy-path distance/path/stats
//! verbs, protocol hardening (oversized frames, mid-frame disconnects),
//! bounded-queue backpressure (`Busy`), graceful shutdown draining every
//! admitted request, and the headline determinism property — answers over
//! the socket are bit-identical to an in-process replay no matter how many
//! clients the coalescer interleaves.

mod common;

use common::build_p2p;
use se_oracle::net::{
    Backend, Connection, ErrorCode, NetError, OracleServer, Request, Response, ServeConfig,
    StatsSnapshot, MAX_PAIRS_PER_REQUEST, WIRE_FRAME_CAP, WIRE_MAGIC, WIRE_VERSION,
};
use se_oracle::oracle::SeOracle;
use se_oracle::route::PathIndex;
use se_oracle::serve::{pair_stream, QueryHandle};
use std::io::Write;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;
use terrain_oracle::oracle as se_oracle;
use terrain_oracle::prelude::EngineKind;

/// A small oracle backend that has round-tripped through its persisted
/// image, exactly like a production `oracled` deployment.
fn loaded_handle(seed: u64, n: usize) -> QueryHandle {
    let p2p = build_p2p(seed, n, 0.25, EngineKind::EdgeGraph);
    let bytes = p2p.into_oracle().save_bytes();
    QueryHandle::new(SeOracle::load_bytes(&bytes).unwrap())
}

fn start(backend: Backend, cfg: ServeConfig) -> (SocketAddr, thread::JoinHandle<StatsSnapshot>) {
    let server = OracleServer::bind("127.0.0.1:0", backend, cfg).unwrap();
    let addr = server.local_addr().unwrap();
    (addr, thread::spawn(move || server.serve()))
}

fn shutdown(addr: SocketAddr) {
    let mut c = Connection::connect(addr).unwrap();
    match c.roundtrip(&Request::Shutdown { id: 999 }) {
        Ok(Response::ShuttingDown { id: 999 }) | Err(NetError::Disconnected) => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
}

#[test]
fn happy_path_distance_stats_and_errors() {
    let handle = loaded_handle(11, 20);
    let (addr, server) = start(Backend::Oracle(handle.clone()), ServeConfig::default());
    let mut c = Connection::connect(addr).unwrap();

    // Distance answers match the in-process batch API bit for bit.
    let pairs = pair_stream(7, 0, 32, handle.n_sites());
    let resp = c.roundtrip(&Request::Distance { id: 42, pairs: pairs.clone() }).unwrap();
    match resp {
        Response::Distances { id, distances } => {
            assert_eq!(id, 42);
            let expect = handle.distance_many(&pairs);
            assert_eq!(distances.len(), expect.len());
            for (g, w) in distances.iter().zip(&expect) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Empty batch: legal, answers nothing.
    match c.roundtrip(&Request::Distance { id: 43, pairs: vec![] }).unwrap() {
        Response::Distances { id: 43, distances } => assert!(distances.is_empty()),
        other => panic!("unexpected response: {other:?}"),
    }

    // Out-of-range site id: typed error, connection stays usable.
    match c.roundtrip(&Request::Distance { id: 44, pairs: vec![(0, 9999)] }).unwrap() {
        Response::Error { id: 44, code: ErrorCode::SiteOutOfRange, message } => {
            assert!(message.contains("9999"), "unhelpful message: {message}");
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Path against an image without a path index: Unsupported.
    match c.roundtrip(&Request::Path { id: 45, s: 0, t: 1 }).unwrap() {
        Response::Error { id: 45, code: ErrorCode::Unsupported, .. } => {}
        other => panic!("unexpected response: {other:?}"),
    }

    // Stats reflect the traffic so far.
    match c.roundtrip(&Request::Stats { id: 46 }).unwrap() {
        Response::Stats { id: 46, stats } => {
            assert_eq!(stats.n_sites as usize, handle.n_sites());
            assert_eq!(stats.requests, 2); // the two admitted distance requests
            assert_eq!(stats.pairs, 32);
            assert_eq!(stats.errors, 2); // out-of-range + unsupported path
            assert!(stats.batches >= 1);
        }
        other => panic!("unexpected response: {other:?}"),
    }

    shutdown(addr);
    let final_stats = server.join().unwrap();
    assert_eq!(final_stats.requests, 2);
    assert_eq!(final_stats.malformed, 0);
}

#[test]
fn metrics_verb_agrees_with_stats_and_the_client_ledger() {
    use se_oracle::telemetry;

    let handle = loaded_handle(31, 20);
    let n = handle.n_sites();
    let (addr, server) = start(Backend::Oracle(handle), ServeConfig::default());
    let mut c = Connection::connect(addr).unwrap();

    // Closed-loop sends with no retries, so every request is accounted
    // exactly once: sent = served + busy.
    let sent = 12u64;
    let pairs_each = 8usize;
    let mut served = 0u64;
    let mut busy = 0u64;
    for r in 0..sent {
        let pairs = pair_stream(5, r, pairs_each, n);
        match c.roundtrip(&Request::Distance { id: r, pairs }).unwrap() {
            Response::Distances { .. } => served += 1,
            Response::Busy { .. } => busy += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(served + busy, sent);

    let text = match c.roundtrip(&Request::Metrics { id: 99 }).unwrap() {
        Response::Metrics { id: 99, text } => text,
        other => panic!("unexpected response: {other:?}"),
    };
    let stats = match c.roundtrip(&Request::Stats { id: 100 }).unwrap() {
        Response::Stats { id: 100, stats } => stats,
        other => panic!("unexpected response: {other:?}"),
    };

    // The registry is what the client observed...
    assert_eq!(telemetry::lookup(&text, "serve_requests_total"), Some(served));
    assert_eq!(telemetry::lookup(&text, "serve_busy_total"), Some(busy));
    assert_eq!(telemetry::lookup(&text, "serve_pairs_total"), Some(served * pairs_each as u64));
    // ...and the Stats verb reads the same counters (nothing else sends
    // between the two scrapes on this single connection).
    assert_eq!(telemetry::lookup(&text, "serve_requests_total"), Some(stats.requests));
    assert_eq!(telemetry::lookup(&text, "serve_pairs_total"), Some(stats.pairs));
    assert_eq!(telemetry::lookup(&text, "serve_busy_total"), Some(stats.busy_rejections));
    assert_eq!(telemetry::lookup(&text, "serve_batches_total"), Some(stats.batches));
    assert_eq!(telemetry::lookup(&text, "serve_connections_total"), Some(stats.connections));
    // Query-path probe telemetry: every answered pair costs at least one
    // node-pair hash probe (counted without any clock on the query path).
    let probes = telemetry::lookup(&text, "serve_probe_pairs_total").unwrap();
    assert!(probes >= stats.pairs, "probes {probes} < pairs {}", stats.pairs);
    // The batch-size histogram is registered and counted batches.
    assert_eq!(telemetry::lookup(&text, "serve_batch_pairs_count"), Some(stats.batches));

    shutdown(addr);
    server.join().unwrap();
}

#[test]
fn path_requests_roundtrip_over_the_socket() {
    let p2p = build_p2p(307, 16, 0.25, EngineKind::EdgeGraph);
    let paths = PathIndex::for_p2p(&p2p, 3);
    let handle = QueryHandle::new(p2p.into_oracle()).with_paths(paths);
    let (addr, server) = start(Backend::Oracle(handle.clone()), ServeConfig::default());

    let mut c = Connection::connect(addr).unwrap();
    for (s, t) in [(0u32, 5u32), (3, 9), (2, 2)] {
        match c.roundtrip(&Request::Path { id: 1, s, t }).unwrap() {
            Response::Path { id: 1, distance, points } => {
                let want = handle.shortest_path(s as usize, t as usize);
                assert_eq!(distance.to_bits(), want.distance.to_bits());
                assert_eq!(points.len(), want.path.points.len());
                for (got, p) in points.iter().zip(&want.path.points) {
                    assert_eq!(got.0.to_bits(), p.x.to_bits());
                    assert_eq!(got.1.to_bits(), p.y.to_bits());
                    assert_eq!(got.2.to_bits(), p.z.to_bits());
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    shutdown(addr);
    server.join().unwrap();
}

#[test]
fn oversized_frame_is_rejected_from_the_header() {
    let (addr, server) = start(Backend::Oracle(loaded_handle(13, 12)), ServeConfig::default());
    let mut c = Connection::connect(addr).unwrap();

    // A declared length just over the cap — and no payload at all. The
    // server must reject from the header alone, answer, and close.
    let mut head = Vec::new();
    head.extend_from_slice(&WIRE_MAGIC);
    head.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    head.extend_from_slice(&(WIRE_FRAME_CAP + 1).to_le_bytes());
    c.stream().write_all(&head).unwrap();

    match c.recv().unwrap() {
        Response::Error { code: ErrorCode::BadRequest, message, .. } => {
            assert!(message.contains("frame"), "unhelpful message: {message}");
        }
        other => panic!("unexpected response: {other:?}"),
    }
    // The connection is closed after a framing violation.
    match c.recv() {
        Err(NetError::Disconnected) => {}
        other => panic!("expected disconnect, got {other:?}"),
    }

    // The server itself is unharmed.
    let mut c2 = Connection::connect(addr).unwrap();
    match c2.roundtrip(&Request::Distance { id: 1, pairs: vec![(0, 1)] }).unwrap() {
        Response::Distances { .. } => {}
        other => panic!("unexpected response: {other:?}"),
    }
    shutdown(addr);
    let stats = server.join().unwrap();
    assert_eq!(stats.malformed, 1);
}

#[test]
fn mid_frame_disconnect_leaves_server_healthy() {
    let (addr, server) = start(Backend::Oracle(loaded_handle(17, 12)), ServeConfig::default());

    // Send only the first half of a valid frame, then vanish.
    {
        let mut c = Connection::connect(addr).unwrap();
        let frame = se_oracle::net::encode_request(&Request::Distance {
            id: 5,
            pairs: vec![(0, 1), (2, 3)],
        });
        c.stream().write_all(&frame[..frame.len() / 2]).unwrap();
        // Drop: TCP FIN mid-frame.
    }
    thread::sleep(Duration::from_millis(100));

    let mut c = Connection::connect(addr).unwrap();
    match c.roundtrip(&Request::Distance { id: 6, pairs: vec![(0, 1)] }).unwrap() {
        Response::Distances { id: 6, distances } => assert_eq!(distances.len(), 1),
        other => panic!("unexpected response: {other:?}"),
    }
    shutdown(addr);
    let stats = server.join().unwrap();
    // A half-frame EOF admits nothing and is not a protocol violation.
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.malformed, 0);
}

#[test]
fn bounded_queue_answers_busy_then_recovers() {
    let handle = loaded_handle(19, 24);
    let n = handle.n_sites();
    // One job per batch, no admission wait, tiny queue: two maximal
    // requests keep the batcher busy long enough for a burst of small
    // requests to overflow the bound.
    let cfg = ServeConfig { max_batch_pairs: 1, max_wait: Duration::from_micros(0), queue_cap: 2 };
    let (addr, server) = start(Backend::Oracle(handle), cfg);
    let mut c = Connection::connect(addr).unwrap();

    let heavy = pair_stream(3, 0, MAX_PAIRS_PER_REQUEST, n);
    c.send(&Request::Distance { id: 1, pairs: heavy.clone() }).unwrap();
    c.send(&Request::Distance { id: 2, pairs: heavy }).unwrap();
    // Let the batcher pop request 1 and start grinding on it; request 2
    // then occupies the queue.
    thread::sleep(Duration::from_millis(30));
    let burst = 16u64;
    for i in 0..burst {
        c.send(&Request::Distance { id: 10 + i, pairs: vec![(0, 1)] }).unwrap();
    }

    let mut busy = 0u64;
    let mut answered = 0u64;
    for _ in 0..(2 + burst) {
        match c.recv().unwrap() {
            Response::Busy { id, .. } => {
                assert!(id >= 10, "heavy requests must be admitted, not rejected");
                busy += 1;
            }
            Response::Distances { .. } => answered += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(busy > 0, "expected at least one Busy rejection");
    assert_eq!(busy + answered, 2 + burst);

    // After the backlog drains, a retry succeeds.
    match c.roundtrip(&Request::Distance { id: 99, pairs: vec![(0, 1)] }).unwrap() {
        Response::Distances { id: 99, .. } => {}
        other => panic!("unexpected response: {other:?}"),
    }

    shutdown(addr);
    let stats = server.join().unwrap();
    assert_eq!(stats.busy_rejections, busy);
    assert!(stats.max_queue_depth <= 2);
}

#[test]
fn graceful_shutdown_drains_admitted_requests() {
    let handle = loaded_handle(23, 20);
    let n = handle.n_sites();
    // A long admission wait would delay the drain if shutdown didn't cut
    // it short — so use one, and let the test's timeout police it.
    let cfg =
        ServeConfig { max_batch_pairs: 4096, max_wait: Duration::from_millis(200), queue_cap: 256 };
    let (addr, server) = start(Backend::Oracle(handle.clone()), cfg);
    let mut c = Connection::connect(addr).unwrap();

    let total = 20u64;
    let mut workloads = Vec::new();
    for r in 0..total {
        let pairs = pair_stream(11, r, 16, n);
        c.send(&Request::Distance { id: r, pairs: pairs.clone() }).unwrap();
        workloads.push(pairs);
    }
    c.send(&Request::Shutdown { id: 777 }).unwrap();

    // Every admitted request must still be answered — bit-identically —
    // plus the shutdown ack, in any order.
    let mut answers = vec![None; total as usize];
    let mut acked = false;
    for _ in 0..=total {
        match c.recv().unwrap() {
            Response::Distances { id, distances } => {
                assert!(answers[id as usize].replace(distances).is_none());
            }
            Response::ShuttingDown { id: 777 } => acked = true,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(acked);
    for (r, got) in answers.iter().enumerate() {
        let got = got.as_ref().expect("request answer dropped in shutdown");
        for (g, w) in got.iter().zip(&handle.distance_many(&workloads[r])) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    let stats = server.join().unwrap();
    assert_eq!(stats.requests, total);
    assert_eq!(stats.pairs, total * 16);
}

#[test]
fn eight_clients_are_bit_identical_to_serial_replay() {
    let handle = loaded_handle(29, 24);
    let n = handle.n_sites();
    // A small max-batch with a real wait forces heavy cross-client
    // coalescing and re-slicing — the interesting case for determinism.
    let cfg =
        ServeConfig { max_batch_pairs: 512, max_wait: Duration::from_micros(300), queue_cap: 256 };
    let (addr, server) = start(Backend::Oracle(handle.clone()), cfg);

    const CLIENTS: u64 = 8;
    const REQUESTS: u64 = 25;
    const PAIRS: usize = 40;
    const SALT: u64 = 0xC0FFEE;

    let mut joins = Vec::new();
    for client in 0..CLIENTS {
        joins.push(thread::spawn(move || {
            let mut c = Connection::connect(addr).unwrap();
            let mut out = Vec::new();
            for r in 0..REQUESTS {
                let stream = client * REQUESTS + r;
                let pairs = pair_stream(SALT, stream, PAIRS, n);
                loop {
                    match c.roundtrip(&Request::Distance { id: stream, pairs: pairs.clone() }) {
                        Ok(Response::Distances { id, distances }) => {
                            assert_eq!(id, stream);
                            out.push((stream, distances));
                            break;
                        }
                        Ok(Response::Busy { .. }) => {
                            thread::sleep(Duration::from_micros(200));
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
            }
            out
        }));
    }
    let mut all: Vec<(u64, Vec<f64>)> = Vec::new();
    for j in joins {
        all.extend(j.join().unwrap());
    }
    shutdown(addr);
    let stats = server.join().unwrap();

    // Serial in-process replay of every stream: the socket answers must be
    // identical bits, regardless of how the batcher interleaved clients.
    assert_eq!(all.len(), (CLIENTS * REQUESTS) as usize);
    for (stream, got) in &all {
        let pairs = pair_stream(SALT, *stream, PAIRS, n);
        let want = handle.distance_many(&pairs);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "stream {stream} diverged from serial replay");
        }
    }
    assert_eq!(stats.requests, CLIENTS * REQUESTS);
    assert_eq!(stats.connections as usize, CLIENTS as usize + 1); // + shutdown conn
}
