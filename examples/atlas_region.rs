//! Scaling past the monolithic ceiling with a terrain atlas: a level-6
//! fractal terrain — 4 225 mesh vertices, 4× the largest fixture any
//! earlier layer exercised — built as a 2×2 atlas of per-tile oracles and
//! cross-validated against a monolithic oracle over the same sites.
//!
//! The example demonstrates the three claims the atlas subsystem makes:
//!
//! 1. **Construction scales**: four quarter-size tile builds (run through
//!    the shared worker pool) finish faster than one whole-mesh build at
//!    `threads = auto`, because per-SSAD cost grows with mesh size.
//! 2. **Answers stay honest**: every cross-tile answer is within the
//!    documented routing bound of the monolithic oracle's, and never
//!    below the `(1 − ε)` geodesic floor.
//! 3. **The image ships**: the whole atlas persists to one `SEAT` image
//!    that reloads byte-identically and answers bit-identically.
//!
//! Run with `cargo run --release --example atlas_region`.

use std::sync::Arc;
use std::time::Instant;
use terrain_oracle::oracle::atlas::{Atlas, AtlasConfig, AtlasHandle, EPS_ROUTE};
use terrain_oracle::oracle::oracle::{BuildConfig, SeOracle};
use terrain_oracle::oracle::serve::pair_stream;
use terrain_oracle::prelude::*;

fn main() {
    // A level-6 diamond-square fractal: 65 × 65 = 4 225 vertices.
    let eps = 0.15;
    let base = diamond_square(6, 0.6, 0xA71A5).to_mesh();
    assert_eq!(base.n_vertices(), 4_225);
    let pois = sample_uniform(&base, 120, 0x90E5);
    let refined = insert_surface_points(&base, &pois, None).expect("refine POIs");
    let mut sites = refined.poi_vertices.clone();
    sites.sort_unstable();
    sites.dedup();
    let mesh = Arc::new(refined.mesh);
    let n = sites.len();
    println!(
        "terrain: {} vertices, {} faces; {} distinct sites",
        mesh.n_vertices(),
        mesh.n_faces(),
        n
    );

    // 1. Build both ways at threads = auto (the edge-graph engine keeps
    //    the demo CI-friendly; the relative build-time story is the same
    //    for the exact engine, only more pronounced). Each build runs
    //    five times and keeps its best: the min converges on the true cost
    //    even on a noisy runner, so a scheduler stall would have to hit
    //    every atlas rep and no monolithic rep to flip the ~25% margin.
    const BUILD_REPS: usize = 5;
    let mut t_mono = std::time::Duration::MAX;
    let mut mono = None;
    for _ in 0..BUILD_REPS {
        let t0 = Instant::now();
        let engine = EdgeGraphEngine::new(mesh.clone());
        let space = terrain_oracle::geodesic::VertexSiteSpace::new(Arc::new(engine), sites.clone());
        mono = Some(SeOracle::build(&space, eps, &BuildConfig::default()).expect("mono build"));
        t_mono = t_mono.min(t0.elapsed());
    }
    let mono = mono.expect("at least one build");

    let cfg = AtlasConfig::default(); // 2×2 grid, 0.15 overlap, spacing 8
    let mut t_atlas = std::time::Duration::MAX;
    let mut atlas = None;
    for _ in 0..BUILD_REPS {
        let t0 = Instant::now();
        atlas = Some(
            Atlas::build_over_vertices(
                mesh.clone(),
                sites.clone(),
                eps,
                EngineKind::EdgeGraph,
                &cfg,
            )
            .expect("atlas build"),
        );
        t_atlas = t_atlas.min(t0.elapsed());
    }
    let atlas = atlas.expect("at least one build");
    let s = atlas.build_stats();
    println!(
        "monolithic build: {t_mono:.2?} ({} pairs); atlas build: {t_atlas:.2?} \
         (best of {BUILD_REPS} each; {} tiles of {:?} sites, {} portals, {} graph edges, \
         {} workers)",
        mono.n_pairs(),
        s.n_tiles,
        s.tile_sites,
        s.n_portals,
        s.portal_edges,
        s.workers,
    );
    assert!(
        t_atlas < t_mono,
        "atlas build ({t_atlas:.2?}) must beat the monolithic build ({t_mono:.2?})"
    );

    // 2. Cross-validate every pair. The monolithic oracle obeys
    //    |mono − d| ≤ ε·d; the atlas must stay within the documented
    //    routing bound of it and above the shared geodesic floor.
    let mut cross = 0usize;
    let mut max_ratio: f64 = 0.0;
    let mut max_cross_ratio: f64 = 0.0;
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let a = atlas.distance(s, t);
            let m = mono.distance(s, t);
            let ratio = a / m;
            assert!(
                a <= m * (1.0 + EPS_ROUTE) + 1e-9,
                "({s},{t}): atlas {a} breaches the ε_route bound against monolithic {m}"
            );
            assert!(
                a >= m * (1.0 - eps) / (1.0 + eps) - 1e-9,
                "({s},{t}): atlas {a} below the geodesic floor implied by monolithic {m}"
            );
            max_ratio = max_ratio.max(ratio);
            if atlas.is_cross_tile(s, t) {
                cross += 1;
                max_cross_ratio = max_cross_ratio.max(ratio);
            }
        }
    }
    println!(
        "{} ordered pairs ({cross} cross-tile): max atlas/monolithic ratio {:.4} \
         (cross-tile {:.4}; documented bound {})",
        n * (n - 1),
        max_ratio,
        max_cross_ratio,
        1.0 + EPS_ROUTE
    );

    // 3. Persist the whole atlas, reload, and serve concurrently: the
    //    image round-trips byte-identically and a 4-thread handle answers
    //    bit-identically to the in-memory build.
    let image = atlas.save_bytes();
    let reloaded = Atlas::load_bytes(&image).expect("reload atlas image");
    assert_eq!(reloaded.save_bytes(), image, "image must round-trip byte-identically");
    let handle = AtlasHandle::new(reloaded);
    let pairs = pair_stream(0xA71A_5EED, 1, 20_000, n);
    let t0 = Instant::now();
    let served = handle.distance_many_par(&pairs, 4);
    let t_par = t0.elapsed();
    let replay = atlas.distance_many(&pairs);
    assert_eq!(
        served.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        replay.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        "served answers must be bit-identical to the in-memory atlas"
    );
    println!(
        "image: {:.1} KiB; 20k mixed queries from 4 threads in {t_par:.2?} \
         ({:.1}k q/s), bit-identical to the in-memory replay",
        image.len() as f64 / 1024.0,
        20_000.0 / t_par.as_secs_f64() / 1e3
    );
    println!("done");
}
