//! Computer-graphics scenario from the paper's §1.1(2): geodesic feature
//! vectors for 3-D shape comparison.
//!
//! Reference points are sampled on two surfaces; the sorted vector of all
//! pairwise geodesic distances (normalised) is a transformation-invariant
//! shape signature. Surfaces that differ only by rigid motion / uniform
//! scale get near-identical signatures; genuinely different reliefs do
//! not. All pairwise distances come from one SE oracle per surface —
//! exactly the "multiple geodesic distance computations" workload the
//! paper motivates oracles with.
//!
//! Run with `cargo run --release --example shape_signature`.

use terrain_oracle::prelude::*;

/// Sorted, mean-normalised pairwise-distance signature of a surface.
fn signature(mesh: &TerrainMesh, n_refs: usize, poi_seed: u64) -> Vec<f64> {
    let refs = sample_uniform(mesh, n_refs, poi_seed);
    let oracle = P2POracle::build(mesh, &refs, 0.05, EngineKind::Exact, &BuildConfig::default())
        .expect("oracle construction");
    let mut dists = Vec::with_capacity(n_refs * (n_refs - 1) / 2);
    for a in 0..n_refs {
        for b in a + 1..n_refs {
            dists.push(oracle.distance(a, b));
        }
    }
    let mean = dists.iter().sum::<f64>() / dists.len() as f64;
    for d in &mut dists {
        *d /= mean;
    }
    dists.sort_by(|x, y| x.partial_cmp(y).unwrap());
    dists
}

/// L1 distance between signatures.
fn signature_gap(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

fn main() {
    let n_refs = 24;

    // Shape A and a uniformly scaled copy of it (a "similar object").
    let base = diamond_square(5, 0.62, 1001);
    let mesh_a = base.to_mesh();
    let mut scaled = base.clone();
    scaled.dx *= 2.5;
    scaled.dy *= 2.5;
    scaled.scale_heights(2.5);
    let mesh_a_scaled = scaled.to_mesh();

    // Shape B: a different relief entirely.
    let mesh_b = diamond_square(5, 0.62, 2002).to_mesh();

    println!("computing geodesic signatures ({n_refs} reference points each)…");
    let sig_a = signature(&mesh_a, n_refs, 5);
    let sig_a2 = signature(&mesh_a_scaled, n_refs, 5);
    let sig_b = signature(&mesh_b, n_refs, 5);

    let same = signature_gap(&sig_a, &sig_a2);
    let diff = signature_gap(&sig_a, &sig_b);
    println!("signature gap, A vs scaled-A : {same:.4}   (same shape)");
    println!("signature gap, A vs B        : {diff:.4}   (different shapes)");
    assert!(same < diff, "scaled copy should be closer than a different shape ({same} vs {diff})");
    println!("=> geodesic signatures separate the shapes correctly");
}
