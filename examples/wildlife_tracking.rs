//! Spatial-data-mining scenario from the paper's §1.1(1)/(5): wildlife
//! researchers track animals with radio-telemetry receivers on a terrain.
//! Receiver stations come and go as the study area shifts — the dynamic
//! update problem the paper's conclusion poses as future work.
//!
//! Demonstrates [`DynamicOracle`] (insert/remove without rebuilding) and
//! [`ProximityIndex`] (nearest-receiver queries) working together.
//!
//! Run with `cargo run --release --example wildlife_tracking`.

use std::sync::Arc;
use terrain_oracle::geodesic::{SiteSpace, VertexSiteSpace};
use terrain_oracle::oracle::dynamic::DynamicOracle;
use terrain_oracle::oracle::ProximityIndex;
use terrain_oracle::prelude::*;

fn main() {
    // An EaglePeak-like ridge system.
    let mesh = Preset::EaglePeak.mesh(0.08);
    println!("terrain: {} vertices", mesh.n_vertices());

    // Candidate receiver locations (the universe): 36 surveyed spots.
    let candidates = sample_uniform(&mesh, 36, 2024);
    let refined = insert_surface_points(&mesh, &candidates, None).expect("refinement");
    let mut sites = refined.poi_vertices.clone();
    sites.sort_unstable();
    sites.dedup();
    let space = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);

    // Season 1: the first 24 stations are deployed.
    let eps = 0.1;
    let initial: Vec<usize> = (0..24).collect();
    let mut oracle = DynamicOracle::with_initial(&space, initial, eps, &BuildConfig::default())
        .expect("oracle construction");
    println!(
        "season 1: {} stations indexed, {:.1} KiB",
        oracle.n_active(),
        oracle.storage_bytes() as f64 / 1024.0
    );

    // Season 2: four stations wash out, six new ones come online. No
    // rebuild — each insertion costs one SSAD plus a tree descent.
    for dead in [3usize, 9, 14, 20] {
        oracle.remove(dead).expect("station was active");
    }
    for new in 24..30 {
        oracle.insert(new).expect("station was inactive");
    }
    let st = oracle.stats();
    println!(
        "season 2: {} stations ({} SSAD runs for inserts, {} patch pairs)",
        oracle.n_active(),
        st.insert_ssad_runs,
        st.patch_pairs
    );

    // Inter-station geodesic distances stay ε-accurate through the churn.
    let active = oracle.active_sites();
    let mut worst_rel = 0.0f64;
    for &a in &active {
        for &b in &active {
            if a < b {
                let approx = oracle.distance(a, b).expect("both active");
                let exact = space.distance(a, b);
                if exact > 0.0 {
                    worst_rel = worst_rel.max((approx - exact).abs() / exact);
                }
            }
        }
    }
    println!("worst relative error across churn: {worst_rel:.4} (ε = {eps})");
    assert!(worst_rel <= eps + 1e-9);

    // An animal fix comes in near station 5: which receivers should be
    // polled? Nearest-3 by *geodesic* distance (canyons matter, straight
    // lines don't). Rebuild first so the proximity tree covers everything.
    oracle.rebuild().expect("rebuild");
    let se = oracle.base_oracle();
    let idx = ProximityIndex::new(se);
    // After the rebuild, base site indices follow `active_sites()` order.
    let fix_site = 5usize;
    let nearest = idx.knn(fix_site, 3);
    println!("receivers to poll for a fix at station #{fix_site}:");
    for nb in &nearest {
        println!("  station #{:2}  {:7.0} m over the surface", nb.site, nb.distance);
    }
    assert_eq!(nearest.len(), 3);
    println!("done");
}
