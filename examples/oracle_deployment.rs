//! Deployment lifecycle: build the oracle once (expensive, offline), ship
//! the compact image to the serving fleet, reload and answer queries
//! (cheap, online). The space-efficiency that gives SE its name is what
//! makes the shipped artifact small — §1.3's two-POI thought experiment
//! taken to production.
//!
//! Run with `cargo run --release --example oracle_deployment`.

use std::time::Instant;
use terrain_oracle::oracle::SeOracle;
use terrain_oracle::prelude::*;

fn main() {
    // Offline: build over the SF-like dataset's POIs.
    let mesh = Preset::SanFrancisco.mesh(0.08);
    let pois = sample_uniform(&mesh, 200, 41);
    let eps = 0.1;

    let t0 = Instant::now();
    let built = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
        .expect("oracle construction");
    let build_time = t0.elapsed();
    println!(
        "offline build: {:.2?} for {} POIs on {} vertices",
        build_time,
        pois.len(),
        mesh.n_vertices()
    );

    // Ship: serialize to a file.
    let dir = std::env::temp_dir();
    let path = dir.join("terrain-oracle-example.seor");
    let t0 = Instant::now();
    let mut f = std::fs::File::create(&path).expect("create image file");
    built.oracle().save_to(&mut f).expect("serialize");
    drop(f);
    let save_time = t0.elapsed();
    let file_len = std::fs::metadata(&path).expect("stat").len();
    println!(
        "image: {:.1} KiB on disk ({:.2?} to write) — vs {:.1} KiB in memory",
        file_len as f64 / 1024.0,
        save_time,
        built.storage_bytes() as f64 / 1024.0
    );

    // Serve: reload and answer. No mesh, no geodesic engine, no POI
    // coordinates needed — the image is self-contained for distances.
    let t0 = Instant::now();
    let mut f = std::fs::File::open(&path).expect("open image");
    let served = SeOracle::load_from(&mut f).expect("deserialize");
    println!("reload: {:.2?}", t0.elapsed());

    let t0 = Instant::now();
    let mut checked = 0u64;
    for s in (0..served.n_sites()).step_by(7) {
        for t in (0..served.n_sites()).step_by(11) {
            let d_live = built.oracle().distance(s, t);
            let d_served = served.distance(s, t);
            assert_eq!(d_live, d_served, "image answers must be bit-identical");
            checked += 1;
        }
    }
    let per_query = t0.elapsed() / (2 * checked.max(1)) as u32;
    println!("{checked} pairs verified bit-identical, ~{per_query:.0?} per query");

    std::fs::remove_file(&path).ok();
    println!("done");
}
