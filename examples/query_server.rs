//! A query-serving fleet in miniature: build an oracle offline, persist
//! it, reload the image, freeze it into a [`QueryHandle`], and serve a
//! sustained mixed workload (batches interleaved with single queries)
//! from several threads sharing that one handle — verifying along the way
//! that every thread's answers are bit-identical to a single-threaded
//! replay, which is the serving layer's whole contract.
//!
//! Run with `cargo run --release --example query_server`.

use std::time::Instant;
use terrain_oracle::oracle::SeOracle;
use terrain_oracle::prelude::*;

const SERVING_THREADS: u64 = 4;
const QUERIES_PER_THREAD: usize = 50_000;
const BATCH: usize = 1_000;

/// Deterministic per-thread pair stream: no shared RNG, so the replay
/// below regenerates each thread's workload exactly.
fn workload(tid: u64, len: usize, n_sites: usize) -> Vec<(u32, u32)> {
    terrain_oracle::oracle::serve::pair_stream(0xF1EE_7000, tid, len, n_sites)
}

fn main() {
    // 1. Offline: build and ship the image.
    let mesh = Preset::SfSmall.mesh(0.3);
    let pois = sample_uniform(&mesh, 40, 47);
    let eps = 0.15;
    let t0 = Instant::now();
    let built = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
        .expect("oracle construction");
    let path = std::env::temp_dir().join("terrain-oracle-query-server.seor");
    let mut f = std::fs::File::create(&path).expect("create image");
    built.oracle().save_to(&mut f).expect("serialize");
    drop(f);
    println!(
        "offline: built SE(ε={eps}) over {} POIs and persisted it in {:.2?}",
        pois.len(),
        t0.elapsed()
    );

    // 2. Online: reload and freeze into a shareable read-only handle.
    let mut f = std::fs::File::open(&path).expect("open image");
    let served = SeOracle::load_from(&mut f).expect("deserialize");
    let handle = QueryHandle::new(served);
    let n = handle.n_sites();
    println!("online: image reloaded, {n} sites, h = {}", handle.oracle().height());

    // 3. Single-threaded replay of every thread's workload — the ground
    //    truth the concurrent run must reproduce bit for bit.
    let replay: Vec<Vec<u64>> = (0..SERVING_THREADS)
        .map(|tid| {
            handle
                .distance_many(&workload(tid, QUERIES_PER_THREAD, n))
                .into_iter()
                .map(f64::to_bits)
                .collect()
        })
        .collect();

    // 4. The fleet: each thread serves its workload in batches, re-asking
    //    every 131st answer as a single query mid-stream (the mixed
    //    traffic a real server sees).
    let t0 = Instant::now();
    let answers: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..SERVING_THREADS)
            .map(|tid| {
                let worker = handle.clone();
                scope.spawn(move || {
                    let pairs = workload(tid, QUERIES_PER_THREAD, n);
                    let mut bits = Vec::with_capacity(pairs.len());
                    for chunk in pairs.chunks(BATCH) {
                        let batch = worker.distance_many(chunk);
                        for (k, &(s, t)) in chunk.iter().enumerate().step_by(131) {
                            let single = worker.distance(s as usize, t as usize);
                            assert_eq!(
                                single.to_bits(),
                                batch[k].to_bits(),
                                "single query disagrees with its batch"
                            );
                        }
                        bits.extend(batch.into_iter().map(f64::to_bits));
                    }
                    bits
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("serving thread panicked")).collect()
    });
    let elapsed = t0.elapsed();
    let total = SERVING_THREADS as usize * QUERIES_PER_THREAD;
    assert_eq!(answers, replay, "concurrent serving must equal the single-threaded replay");
    println!(
        "served {total} queries from {SERVING_THREADS} threads in {elapsed:.2?} \
         ({:.1}k q/s) — all bit-identical to the serial replay",
        total as f64 / elapsed.as_secs_f64() / 1e3
    );

    // 5. Amortization: the same 20k-pair batch, three ways.
    let pairs = workload(99, 20_000, n);
    let t0 = Instant::now();
    let mut acc = 0.0;
    for &(s, t) in &pairs {
        acc += handle.distance(s as usize, t as usize);
    }
    let t_individual = t0.elapsed();
    let t0 = Instant::now();
    let batch = handle.distance_many(&pairs);
    let t_batch = t0.elapsed();
    let t0 = Instant::now();
    let par = handle.distance_many_par(&pairs, 0);
    let t_par = t0.elapsed();
    assert_eq!(acc, batch.iter().sum::<f64>(), "batch must reproduce individual answers");
    assert_eq!(batch, par, "parallel driver must reproduce the sequential batch");
    println!(
        "20k pairs: individual {t_individual:.2?}, distance_many {t_batch:.2?} \
         ({:.2}×), distance_many_par(auto) {t_par:.2?}",
        t_individual.as_secs_f64() / t_batch.as_secs_f64()
    );

    std::fs::remove_file(&path).ok();
    println!("done");
}
