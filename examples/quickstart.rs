//! Quickstart: build an SE distance oracle on a synthetic terrain and
//! answer P2P queries, comparing against exact geodesics.
//!
//! Run with `cargo run --release --example quickstart`.

use std::time::Instant;
use terrain_oracle::prelude::*;

fn main() {
    // 1. A terrain: the "small San Francisco" stand-in preset (≈1k
    //    vertices over a 1.4 km × 1.1 km footprint).
    let mesh = Preset::SfSmall.mesh(1.0);
    let stats = mesh.stats();
    println!(
        "terrain: {} vertices, {} faces, {:.1} m mean edge",
        stats.n_vertices, stats.n_faces, stats.mean_edge_len
    );

    // 2. Sixty POIs, as in the paper's Fig 8 setup.
    let pois = sample_uniform(&mesh, 60, 42);

    // 3. Build SE with ε = 0.1 over the exact geodesic engine.
    let eps = 0.1;
    let t0 = Instant::now();
    let oracle = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
        .expect("oracle construction");
    let stats = oracle.oracle().build_stats();
    println!(
        "built SE(ε={eps}) in {:.2?}: h = {}, {} node pairs, {:.1} KiB \
         ({} workers, SSAD cache {} hits / {} misses)",
        t0.elapsed(),
        oracle.oracle().height(),
        oracle.oracle().n_pairs(),
        oracle.storage_bytes() as f64 / 1024.0,
        stats.workers,
        stats.cache_hits,
        stats.cache_misses
    );

    // 4. Query every pair; measure the worst observed error.
    let t0 = Instant::now();
    let mut queries = 0u32;
    let mut worst_err = 0.0f64;
    for a in 0..10 {
        for b in 0..10 {
            let approx = oracle.distance(a, b);
            let exact = oracle.engine_distance(a, b);
            if exact > 0.0 {
                worst_err = worst_err.max((approx - exact).abs() / exact);
            }
            queries += 1;
        }
    }
    println!(
        "{} queries in {:.2?} — worst observed error {:.4} (bound ε = {eps})",
        queries,
        t0.elapsed(),
        worst_err
    );
    assert!(worst_err <= eps + 1e-9);

    // 5. Query throughput on the oracle alone (what the paper's query-time
    //    plots measure).
    let t0 = Instant::now();
    let m = 100_000u32;
    let mut acc = 0.0;
    for i in 0..m {
        let a = (i % 60) as usize;
        let b = ((i * 7 + 13) % 60) as usize;
        acc += oracle.distance(a, b);
    }
    let per = t0.elapsed() / m;
    println!("oracle query latency: {per:?}/query (checksum {acc:.1})");
}
