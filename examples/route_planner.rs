//! Route planning: the oracle answers "how far?" in microseconds; when the
//! user commits to a destination, the Steiner graph reconstructs the
//! actual route as a surface polyline (§1.1's hiking/vehicle scenarios
//! need both).
//!
//! Run with `cargo run --release --example route_planner`.

use std::sync::Arc;
use terrain_oracle::prelude::*;

fn main() {
    let mesh = Arc::new(Preset::BearHead.mesh(0.06));
    let pois = sample_uniform(&mesh, 30, 99);
    let eps = 0.1;

    let oracle = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
        .expect("oracle construction");
    println!(
        "oracle over {} waypoints: {:.1} KiB",
        oracle.n_pois(),
        oracle.storage_bytes() as f64 / 1024.0
    );

    // Screening phase: rank all destinations from waypoint 0 by distance —
    // one oracle probe each, no shortest-path computation.
    let src = 0usize;
    let mut ranked: Vec<(usize, f64)> =
        (1..oracle.n_pois()).map(|i| (i, oracle.distance(src, i))).collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("closest 3 destinations from waypoint #0:");
    for &(i, d) in ranked.iter().take(3) {
        println!("  #{i:2}  ≈{:6.0} m", d);
    }

    // Commit phase: reconstruct the route to the top pick. The polyline
    // lives on the refined mesh (POIs are vertices there).
    let (dest, est) = ranked[0];
    let graph = SteinerGraph::with_points_per_edge(oracle.mesh().clone(), 3);
    let path = shortest_vertex_path(&graph, oracle.poi_vertex(src), oracle.poi_vertex(dest))
        .expect("connected mesh");
    let route = path.simplify_collinear(1e-6);
    println!(
        "route to #{dest}: {:.0} m over {} segments (oracle estimated {est:.0} m)",
        route.length,
        route.n_segments()
    );

    // The polyline is on-surface, so it can only be ≥ the true geodesic;
    // the oracle estimate is within ε of it. Their ratio is bounded by the
    // product of the two approximation factors.
    let ratio = route.length / (est / (1.0 + eps));
    println!("route/lower-bound ratio: {ratio:.3}");
    assert!(ratio >= 1.0 - 1e-9, "surface path below the ε-deflated estimate");
    assert!(ratio <= 1.30, "path reconstruction unexpectedly loose: {ratio}");

    // Emit waypoints every ~500 m for a GPS device.
    let step = 500.0;
    let mut marks = Vec::new();
    let mut at = 0.0;
    while at < route.length {
        marks.push(route.point_at(at));
        at += step;
    }
    marks.push(route.point_at(route.length));
    println!("GPS track: {} waypoints at {step:.0} m spacing", marks.len());
    for (i, p) in marks.iter().take(4).enumerate() {
        println!("  wp{i}: ({:8.1}, {:8.1}, {:6.1})", p.x, p.y, p.z);
    }
    println!("done");
}
