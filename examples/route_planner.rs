//! Route planning: the oracle answers "how far?" in microseconds; when the
//! user commits to a destination, [`QueryHandle::shortest_path`] returns
//! the actual route as a surface polyline (§1.1's hiking/vehicle scenarios
//! need both), and [`QueryHandle::pois_within_detour`] finds stopovers
//! that barely lengthen the trip.
//!
//! Run with `cargo run --release --example route_planner`.

use std::sync::Arc;
use terrain_oracle::oracle::EPS_PATH;
use terrain_oracle::prelude::*;

fn main() {
    let mesh = Arc::new(Preset::BearHead.mesh(0.06));
    let pois = sample_uniform(&mesh, 30, 99);
    let eps = 0.1;

    let oracle = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
        .expect("oracle construction");
    println!(
        "oracle over {} waypoints: {:.1} KiB",
        oracle.n_pois(),
        oracle.storage_bytes() as f64 / 1024.0
    );

    // A path index over the same site set turns distance answers into
    // routes. Build both into one serving handle.
    let paths = PathIndex::for_p2p(&oracle, 3);
    println!("path index: {:.1} KiB", paths.storage_bytes() as f64 / 1024.0);
    let handle = QueryHandle::new(oracle.into_oracle()).with_paths(paths);

    // Screening phase: rank all destinations from waypoint 0 by distance —
    // one oracle probe each, no shortest-path computation.
    let src = 0usize;
    let mut ranked: Vec<(usize, f64)> =
        (1..handle.n_sites()).map(|i| (i, handle.distance(src, i))).collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("closest 3 destinations from waypoint #0:");
    for &(i, d) in ranked.iter().take(3) {
        println!("  #{i:2}  ≈{:6.0} m", d);
    }

    // Commit phase: one call answers distance and route together.
    let (dest, est) = ranked[0];
    let sp = handle.shortest_path(src, dest);
    assert_eq!(sp.distance, est, "path queries reuse the distance answer bit-for-bit");
    let route = sp.path.simplify_collinear(1e-6);
    println!(
        "route to #{dest}: {:.0} m over {} segments (oracle estimated {est:.0} m)",
        route.length,
        route.n_segments()
    );

    // The polyline is on-surface, so it can only be ≥ the true geodesic;
    // the oracle estimate is within ε of it. Their ratio is bounded by the
    // EPS_PATH contract.
    let ratio = route.length / (est / (1.0 + eps));
    println!("route/lower-bound ratio: {ratio:.3}");
    assert!(ratio >= 1.0 - 1e-9, "surface path below the ε-deflated estimate");
    assert!(route.length <= est * (1.0 + EPS_PATH) + 1e-9, "path breaks the EPS_PATH contract");

    // Which waypoints could we visit on the way for ≤ 20% extra walking?
    let detour = handle.pois_within_detour(src, dest, 0.2 * est);
    println!("stopovers within a 20% detour to #{dest}:");
    for p in detour.iter().filter(|p| p.site != src && p.site != dest) {
        println!("  #{:2}  +{:4.0} m", p.site, p.via() - est);
    }

    // Emit waypoints every ~500 m for a GPS device. Index-scaled arc
    // lengths avoid accumulating a running `at += step` error, and the
    // final point is appended exactly once even when the route length is
    // an exact multiple of the step.
    let step = 500.0;
    let n_steps = (route.length / step).ceil() as usize;
    let marks: Vec<Vec3> = (0..n_steps)
        .map(|i| route.point_at(i as f64 * step))
        .chain(std::iter::once(route.point_at(route.length)))
        .collect();
    println!("GPS track: {} waypoints at {step:.0} m spacing", marks.len());
    for (i, p) in marks.iter().take(4).enumerate() {
        println!("  wp{i}: ({:8.1}, {:8.1}, {:6.1})", p.x, p.y, p.z);
    }
    assert!(
        marks.windows(2).all(|w| w[0] != w[1]),
        "GPS track must not contain consecutive duplicate waypoints"
    );
    println!("done");
}
