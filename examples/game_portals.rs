//! Online 3-D game scenario from the paper's §1.1(4): a city terrain with
//! portals (INGRESS-style), where each portal's *influence* is estimated
//! from its geodesic distances to every other portal — plus the natural
//! follow-up the paper's proximity applications imply: the geodesic
//! Voronoi cell of each portal (the region of the map it controls).
//!
//! Run with `cargo run --release --example game_portals`.

use std::sync::Arc;
use terrain_oracle::prelude::*;

fn main() {
    // A San-Francisco-like city terrain.
    let mesh = Arc::new(Preset::SanFrancisco.mesh(0.05));
    println!("city terrain: {} vertices", mesh.n_vertices());

    // 24 portals, clustered like real points of interest.
    let locator = terrain::locate::FaceLocator::build(&mesh);
    let portals = sample_clustered(&mesh, &locator, 24, 5, 0.07, 0x9A3E);

    // Pairwise influence: sum of inverse geodesic distances (the paper:
    // "for each portal, it is important to calculate the geodesic distance
    // from this portal to each of the other portals so that the influence
    // of this portal is estimated").
    let eps = 0.1;
    let oracle = P2POracle::build(&mesh, &portals, eps, EngineKind::Exact, &BuildConfig::default())
        .expect("oracle construction");
    let n = oracle.n_pois();
    let mut influence: Vec<(usize, f64)> = (0..n)
        .map(|p| {
            let score: f64 =
                (0..n).filter(|&q| q != p).map(|q| 1.0 / oracle.distance(p, q).max(1.0)).sum();
            (p, score)
        })
        .collect();
    influence.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("most influential portals (inverse-distance score):");
    for &(p, s) in influence.iter().take(3) {
        println!("  portal #{p:2}  score {s:.4}");
    }

    // Territory: geodesic Voronoi cells over the Steiner graph — one
    // multi-source sweep instead of one SSAD per portal.
    let graph = SteinerGraph::with_points_per_edge(oracle.mesh().clone(), 1);
    let sites: Vec<u32> = (0..n).map(|p| oracle.poi_vertex(p)).collect();
    let cells = geodesic_voronoi(&graph, &sites);
    let sizes = cells.cell_sizes(n);
    let total: usize = sizes.iter().sum();
    assert_eq!(total, graph.n_nodes());
    let (biggest, &max_cell) =
        sizes.iter().enumerate().max_by_key(|&(_, &s)| s).expect("non-empty");
    println!(
        "territory: portal #{biggest} controls {max_cell} of {total} graph nodes ({:.1} %)",
        100.0 * max_cell as f64 / total as f64
    );

    // Every portal controls at least its own node, and distances to cell
    // members never exceed distances to other portals' members' owners.
    for (p, &s) in sizes.iter().enumerate() {
        assert!(s >= 1, "portal {p} owns nothing");
    }
    println!("done");
}
