//! Arbitrary-point queries (Appendix C): distances between points that are
//! not POIs — e.g. a vehicle's live GPS position against map coordinates
//! (§1.1's Google-camera-car / military-vehicle workload).
//!
//! The A2A oracle is POI-independent: it indexes Steiner points instead of
//! POIs, so it also serves the `n > N` regime of Appendix D.
//!
//! Run with `cargo run --release --example a2a_queries`.

use std::sync::Arc;
use std::time::Instant;
use terrain_oracle::prelude::*;

fn main() {
    let mesh = Arc::new(Preset::BearHeadLow.mesh(0.05));
    let stats = mesh.stats();
    println!("terrain: {} vertices, {} faces", stats.n_vertices, stats.n_faces);

    let eps = 0.2;
    let t0 = Instant::now();
    let oracle = A2AOracle::build(mesh.clone(), eps, Some(1), &BuildConfig::default())
        .expect("A2A oracle construction");
    println!(
        "A2A oracle built in {:.2?}: {} Steiner sites, {} node pairs, {:.1} MiB",
        t0.elapsed(),
        oracle.graph().n_nodes(),
        oracle.oracle().n_pairs(),
        oracle.storage_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Query random coordinate pairs, the paper's A2A workload: draw (x, y)
    // in the footprint, project to the surface.
    let (lo, hi) = stats.bbox;
    let mut seed = 0x5EEDu64;
    let mut rand01 = move || {
        // SplitMix64-based uniform in [0,1).
        seed = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    };

    let t0 = Instant::now();
    let mut answered = 0u32;
    let mut sum = 0.0;
    while answered < 50 {
        let a = (lo.x + rand01() * (hi.x - lo.x), lo.y + rand01() * (hi.y - lo.y));
        let b = (lo.x + rand01() * (hi.x - lo.x), lo.y + rand01() * (hi.y - lo.y));
        if let Some(d) = oracle.distance_xy(a, b) {
            sum += d;
            answered += 1;
        }
    }
    println!(
        "{answered} A2A queries in {:.2?} (avg distance {:.0} m)",
        t0.elapsed(),
        sum / answered as f64
    );
    println!(
        "note: A2A queries scan |N(s)|·|N(t)| Steiner pairs, so they are \
         slower than P2P queries — the same gap the paper's Fig 12 shows"
    );
}
