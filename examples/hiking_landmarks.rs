//! GIS scenario from the paper's §1.1(1): hikers planning routes between
//! landmarks on a mountain terrain.
//!
//! Builds an SE oracle over clustered landmarks (huts, peaks, trailheads
//! cluster in reality), then answers the proximity queries the paper says
//! are built on shortest-distance queries: nearest-neighbour, range
//! ("what can I reach within my daily hiking budget?"), the route itself,
//! and detour search ("which huts can I pass without adding much?").
//!
//! Run with `cargo run --release --example hiking_landmarks`.

use terrain::locate::FaceLocator;
use terrain_oracle::prelude::*;

fn main() {
    // A BearHead-like mountain terrain (scaled down for example runtime).
    let mesh = Preset::BearHead.mesh(0.1);
    let stats = mesh.stats();
    println!(
        "terrain: {} vertices over {:.1} × {:.1} km",
        stats.n_vertices,
        (stats.bbox.1.x - stats.bbox.0.x) / 1000.0,
        (stats.bbox.1.y - stats.bbox.0.y) / 1000.0,
    );

    // Landmarks cluster around four "valley" hubs.
    let locator = FaceLocator::build(&mesh);
    let landmarks = sample_clustered(&mesh, &locator, 40, 4, 0.06, 7);
    println!("{} landmarks in 4 clusters", landmarks.len());

    let eps = 0.1;
    let oracle =
        P2POracle::build(&mesh, &landmarks, eps, EngineKind::Exact, &BuildConfig::default())
            .expect("oracle construction");
    println!(
        "SE(ε={eps}) ready: {} pairs, {:.1} KiB",
        oracle.oracle().n_pairs(),
        oracle.storage_bytes() as f64 / 1024.0
    );

    // Nearest landmark to the trailhead (landmark 0), via the proximity
    // index's branch-and-bound over the oracle's own partition tree.
    let idx = terrain_oracle::oracle::ProximityIndex::new(oracle.oracle());
    let trailhead = 0usize;
    let nearest = idx.nearest(trailhead).expect("more than one landmark");
    println!("nearest landmark to #0: #{} at {:.0} m on foot", nearest.site, nearest.distance);

    // Range query: everything within a 5 km hike.
    let budget = 5_000.0;
    let reachable = idx.range(trailhead, budget);
    println!("{} landmarks within a {budget:.0} m hike of #0", reachable.len());

    // Commit to the furthest reachable landmark and fetch the actual
    // trail as an on-surface polyline. Proximity results are site ids, so
    // the path/detour queries below stay in site-id space too.
    let paths = PathIndex::for_p2p(&oracle, 3);
    let dest = reachable.last().expect("at least one landmark in range").site;
    let trailhead_site = oracle.site_of_poi(trailhead);
    let sp = oracle.oracle().shortest_path(trailhead_site, dest, &paths);
    println!(
        "trail to #{dest}: {:.0} m on the ground for a {:.0} m oracle estimate",
        sp.path.length, sp.distance
    );

    // Huts worth a stopover: everything reachable with ≤ 20% extra hiking.
    let delta = 0.2 * sp.distance;
    let stopovers = oracle.oracle().pois_within_detour(trailhead_site, dest, delta);
    println!("{} landmarks within a {delta:.0} m detour of that trail", stopovers.len());
    for p in stopovers.iter().filter(|p| p.site != trailhead_site && p.site != dest).take(3) {
        println!("  #{:2}  +{:4.0} m extra", p.site, p.via() - sp.distance);
    }

    // Walking distance vs straight-line distance: terrain matters.
    let mut max_ratio: f64 = 0.0;
    for i in 1..landmarks.len() {
        let geo = oracle.distance(trailhead, i);
        let eu = landmarks[trailhead].pos.dist(landmarks[i].pos);
        if eu > 0.0 {
            max_ratio = max_ratio.max(geo / eu);
        }
    }
    println!(
        "largest geodesic/straight-line ratio from #0: {max_ratio:.2}× \
         (the paper cites terrain detours up to 3×)"
    );
    assert!(max_ratio >= 1.0 - eps);
}
